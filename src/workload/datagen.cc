#include "workload/datagen.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/rng.h"

namespace probe::workload {

namespace {

uint32_t ClampToGrid(double value, uint64_t side) {
  if (value < 0) return 0;
  if (value >= static_cast<double>(side)) {
    return static_cast<uint32_t>(side - 1);
  }
  return static_cast<uint32_t>(value);
}

}  // namespace

std::string DistributionName(Distribution d) {
  switch (d) {
    case Distribution::kUniform:
      return "U";
    case Distribution::kClustered:
      return "C";
    case Distribution::kDiagonal:
      return "D";
    case Distribution::kRoadNetwork:
      return "R";
  }
  return "?";
}

std::vector<index::PointRecord> GeneratePoints(const zorder::GridSpec& grid,
                                               const DataGenConfig& config) {
  assert(grid.Valid());
  util::Rng rng(config.seed);
  const uint64_t side = grid.side();
  const int k = grid.dims;
  std::vector<index::PointRecord> points;
  points.reserve(config.count);

  switch (config.distribution) {
    case Distribution::kUniform: {
      for (size_t i = 0; i < config.count; ++i) {
        std::vector<uint32_t> coords(k);
        for (int d = 0; d < k; ++d) {
          coords[d] = static_cast<uint32_t>(rng.NextBelow(side));
        }
        points.push_back(index::PointRecord{
            geometry::GridPoint(std::span<const uint32_t>(coords)), i});
      }
      break;
    }
    case Distribution::kClustered: {
      assert(config.clusters >= 1);
      // Cluster centers are uniform; points go to clusters round-robin so
      // the paper's 50 x 100 layout falls out of count=5000, clusters=50.
      std::vector<std::vector<double>> centers(config.clusters,
                                               std::vector<double>(k));
      for (auto& center : centers) {
        for (int d = 0; d < k; ++d) {
          center[d] = static_cast<double>(rng.NextBelow(side));
        }
      }
      const double sigma =
          config.cluster_sigma_fraction * static_cast<double>(side);
      for (size_t i = 0; i < config.count; ++i) {
        const auto& center = centers[i % config.clusters];
        std::vector<uint32_t> coords(k);
        for (int d = 0; d < k; ++d) {
          coords[d] =
              ClampToGrid(center[d] + rng.NextGaussian() * sigma, side);
        }
        points.push_back(index::PointRecord{
            geometry::GridPoint(std::span<const uint32_t>(coords)), i});
      }
      break;
    }
    case Distribution::kDiagonal: {
      for (size_t i = 0; i < config.count; ++i) {
        const double base = static_cast<double>(rng.NextBelow(side));
        std::vector<uint32_t> coords(k);
        for (int d = 0; d < k; ++d) {
          const double jitter = config.diagonal_jitter > 0
                                    ? rng.NextGaussian() * config.diagonal_jitter
                                    : 0.0;
          coords[d] = ClampToGrid(base + jitter, side);
        }
        points.push_back(index::PointRecord{
            geometry::GridPoint(std::span<const uint32_t>(coords)), i});
      }
      break;
    }
    case Distribution::kRoadNetwork: {
      assert(config.roads >= 1);
      // Roads: polylines of 3-6 uniformly placed waypoints. Each road's
      // segment lengths weight where its points land.
      struct Road {
        std::vector<std::vector<double>> waypoints;
        std::vector<double> cumulative;  // cumulative segment lengths
      };
      std::vector<Road> roads(config.roads);
      for (Road& road : roads) {
        const int waypoint_count = 3 + static_cast<int>(rng.NextBelow(4));
        for (int w = 0; w < waypoint_count; ++w) {
          std::vector<double> p(k);
          for (int d = 0; d < k; ++d) {
            p[d] = static_cast<double>(rng.NextBelow(side));
          }
          road.waypoints.push_back(std::move(p));
        }
        double running = 0.0;
        for (size_t s = 1; s < road.waypoints.size(); ++s) {
          double len2 = 0.0;
          for (int d = 0; d < k; ++d) {
            const double delta = road.waypoints[s][d] - road.waypoints[s - 1][d];
            len2 += delta * delta;
          }
          running += std::sqrt(len2);
          road.cumulative.push_back(running);
        }
      }
      const double road_sigma = 0.003 * static_cast<double>(side);
      const double town_sigma = 0.008 * static_cast<double>(side);
      for (size_t i = 0; i < config.count; ++i) {
        const Road& road = roads[i % roads.size()];
        std::vector<uint32_t> coords(k);
        if (rng.NextDouble() < config.town_fraction) {
          // A town at a random waypoint.
          const auto& town =
              road.waypoints[rng.NextBelow(road.waypoints.size())];
          for (int d = 0; d < k; ++d) {
            coords[d] =
                ClampToGrid(town[d] + rng.NextGaussian() * town_sigma, side);
          }
        } else {
          // Along the road: pick a position by arc length.
          const double target =
              rng.NextDouble() * road.cumulative.back();
          size_t segment = 0;
          while (segment + 1 < road.cumulative.size() &&
                 road.cumulative[segment] < target) {
            ++segment;
          }
          const double seg_start =
              segment == 0 ? 0.0 : road.cumulative[segment - 1];
          const double seg_len = road.cumulative[segment] - seg_start;
          const double t =
              seg_len > 0 ? (target - seg_start) / seg_len : 0.0;
          const auto& a = road.waypoints[segment];
          const auto& b = road.waypoints[segment + 1];
          for (int d = 0; d < k; ++d) {
            const double along = a[d] + t * (b[d] - a[d]);
            coords[d] =
                ClampToGrid(along + rng.NextGaussian() * road_sigma, side);
          }
        }
        points.push_back(index::PointRecord{
            geometry::GridPoint(std::span<const uint32_t>(coords)), i});
      }
      break;
    }
  }
  return points;
}

PairedPoints GeneratePairedPoints(const zorder::GridSpec& grid,
                                  const PairedDataGenConfig& config) {
  assert(grid.Valid());
  PairedPoints out;
  out.r = GeneratePoints(grid, config.base);

  const size_t s_count =
      config.s_count != 0 ? config.s_count : config.base.count;
  const uint64_t side = grid.side();
  const int k = grid.dims;

  // The unmatched portion of S follows the base distribution with its own
  // seed; matched points then overwrite a deterministic subset, so the
  // match fraction is exact rather than expected.
  DataGenConfig s_config = config.base;
  s_config.count = s_count;
  s_config.seed = config.base.seed + config.seed_offset;
  out.s = GeneratePoints(grid, s_config);

  util::Rng rng(s_config.seed ^ 0x9e3779b97f4a7c15ULL);
  const size_t matched = out.r.empty()
                             ? 0
                             : static_cast<size_t>(
                                   config.match_fraction *
                                   static_cast<double>(s_count));
  for (size_t i = 0; i < matched && i < out.s.size(); ++i) {
    const auto& partner = out.r[rng.NextBelow(out.r.size())].point;
    std::vector<uint32_t> coords(k);
    for (int d = 0; d < k; ++d) {
      coords[d] = ClampToGrid(static_cast<double>(partner[d]) +
                                  rng.NextGaussian() * config.match_sigma,
                              side);
    }
    out.s[i].point = geometry::GridPoint(std::span<const uint32_t>(coords));
  }
  return out;
}

}  // namespace probe::workload
