#ifndef PROBE_WORKLOAD_EXPERIMENT_H_
#define PROBE_WORKLOAD_EXPERIMENT_H_

#include <memory>
#include <vector>

#include "baseline/bucket_kdtree.h"
#include "baseline/kdtree.h"
#include "index/zkd_index.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "workload/datagen.h"

/// \file
/// The Section 5.3.2 experiment driver.
///
/// Reproduces the paper's setup: N points of a given distribution in a
/// prefix B+-tree with a fixed page capacity; rectangular queries of
/// several shapes and volumes at random locations; measured page accesses
/// and efficiency per (shape, volume) cell, against the fixed-size-page
/// analysis's prediction.

namespace probe::workload {

/// Full experiment parameters (defaults = the paper's setup).
struct ExperimentConfig {
  zorder::GridSpec grid{2, 10};
  DataGenConfig data;
  /// Points per leaf page ("page capacity was 20 points").
  int page_capacity = 20;
  /// Query volumes as fractions of the space ("four different volumes").
  std::vector<double> volumes = {0.01, 0.02, 0.05, 0.10};
  /// Query aspect ratios height/width ("various rectangular shapes").
  std::vector<double> aspects = {0.0625, 0.25, 0.5, 1.0, 2.0, 4.0, 16.0};
  /// Random locations per cell ("five randomly selected locations").
  int locations = 5;
  uint64_t query_seed = 42;
  index::SearchOptions search;
  /// Buffer frames for the pool under the index.
  size_t pool_frames = 64;
};

/// Aggregates for one (volume, aspect) cell.
struct ExperimentCell {
  double volume = 0.0;
  double aspect = 0.0;
  double mean_pages = 0.0;
  double max_pages = 0.0;
  double mean_efficiency = 0.0;
  double mean_results = 0.0;
  /// Fixed-size-page analysis upper bound on page accesses (Section 5.3.1):
  /// block-count formula with <= 6 pages per block in 2-d.
  double predicted_pages = 0.0;
  /// The O(v*N) reference: volume fraction x leaf pages.
  double v_times_n = 0.0;
};

/// A full experiment run.
struct ExperimentReport {
  std::vector<ExperimentCell> cells;
  uint64_t leaf_pages = 0;  // N of the O(vN) formula
  uint64_t points = 0;
  int tree_height = 0;
};

/// The analysis's predicted page accesses for a w x h cells query on a
/// grid of `side` cells holding `leaf_pages` pages (2-d, fixed-size-page
/// assumption, <= 6 pages per block).
double PredictedPages2D(double width_cells, double height_cells, double side,
                        uint64_t leaf_pages);

/// k-dimensional generalization of the block bound. Section 5.2 gives the
/// pages-per-block constants the analysis derives: 6 in 2-d and 28/3 in
/// 3-d; only those two dimensionalities are supported.
double PredictedPagesKD(std::span<const double> extent_cells, double side,
                        uint64_t leaf_pages);

/// Runs the experiment. Deterministic in the seeds.
ExperimentReport RunRangeExperiment(const ExperimentConfig& config);

/// An index built for experimentation, bundling its storage. Movable.
struct BuiltIndex {
  std::unique_ptr<storage::MemPager> pager;
  std::unique_ptr<storage::BufferPool> pool;
  std::unique_ptr<index::ZkdIndex> index;
  uint64_t leaf_pages = 0;
};

/// Builds a zkd index over `points` with the given page capacity.
BuiltIndex BuildZkdIndex(const zorder::GridSpec& grid,
                         std::span<const index::PointRecord> points,
                         int page_capacity, size_t pool_frames);

}  // namespace probe::workload

#endif  // PROBE_WORKLOAD_EXPERIMENT_H_
