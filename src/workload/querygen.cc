#include "workload/querygen.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace probe::workload {

geometry::GridBox MakeQueryBox(const zorder::GridSpec& grid,
                               double volume_fraction,
                               std::span<const double> weights,
                               util::Rng& rng) {
  assert(weights.size() == static_cast<size_t>(grid.dims));
  assert(volume_fraction > 0.0 && volume_fraction <= 1.0);
  const int k = grid.dims;
  const double side = static_cast<double>(grid.side());

  // Solve for scale c with prod(c * w_i) = volume_fraction * side^k.
  double weight_product = 1.0;
  for (double w : weights) {
    assert(w > 0.0);
    weight_product *= w;
  }
  const double target_volume =
      volume_fraction * std::pow(side, static_cast<double>(k));
  const double scale =
      std::pow(target_volume / weight_product, 1.0 / static_cast<double>(k));

  std::vector<zorder::DimRange> ranges(k);
  for (int d = 0; d < k; ++d) {
    const uint64_t extent = static_cast<uint64_t>(std::clamp(
        std::llround(scale * weights[d]), 1LL,
        static_cast<long long>(grid.side())));
    const uint64_t max_lo = grid.side() - extent;
    const uint64_t lo = max_lo == 0 ? 0 : rng.NextBelow(max_lo + 1);
    ranges[d].lo = static_cast<uint32_t>(lo);
    ranges[d].hi = static_cast<uint32_t>(lo + extent - 1);
  }
  return geometry::GridBox(ranges);
}

std::vector<geometry::GridBox> MakeQueryBoxes(const zorder::GridSpec& grid,
                                              double volume_fraction,
                                              std::span<const double> weights,
                                              int count, util::Rng& rng) {
  std::vector<geometry::GridBox> boxes;
  boxes.reserve(count);
  for (int i = 0; i < count; ++i) {
    boxes.push_back(MakeQueryBox(grid, volume_fraction, weights, rng));
  }
  return boxes;
}

std::vector<geometry::GridBox> MakeQueryBoxes2D(const zorder::GridSpec& grid,
                                                double volume_fraction,
                                                double aspect, int count,
                                                util::Rng& rng) {
  assert(grid.dims == 2);
  const double weights[2] = {1.0, aspect};
  return MakeQueryBoxes(grid, volume_fraction, weights, count, rng);
}

}  // namespace probe::workload
