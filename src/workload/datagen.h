#ifndef PROBE_WORKLOAD_DATAGEN_H_
#define PROBE_WORKLOAD_DATAGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "index/zkd_index.h"
#include "zorder/grid.h"

/// \file
/// The paper's three synthetic point distributions (Section 5.3.2):
///
///   U — uniformly distributed points;
///   C — "clustered" data: 50 small clusters of 100 points each;
///   D — "diagonally" distributed: points uniform along the x = y line;
///
/// plus a fourth, standing in for the "real data" the paper defers to
/// future work:
///
///   R — a road-network pattern: points scattered along random polylines
///       with denser knots at their waypoints (towns), the mixture of
///       linear features and clusters that geographic data exhibits.
///
/// All generators are deterministic in the seed so every bench run prints
/// identical tables.

namespace probe::workload {

/// Which distribution to generate.
enum class Distribution { kUniform, kClustered, kDiagonal, kRoadNetwork };

/// Short name ("U", "C", "D") for tables.
std::string DistributionName(Distribution d);

/// Generation parameters.
struct DataGenConfig {
  Distribution distribution = Distribution::kUniform;
  /// Total points (the paper uses 5000).
  size_t count = 5000;
  uint64_t seed = 1;
  /// Experiment C: number of clusters (points are dealt round-robin so
  /// every cluster gets count/clusters points; 50 x 100 in the paper).
  int clusters = 50;
  /// Cluster radius as a fraction of the grid side (Gaussian sigma).
  double cluster_sigma_fraction = 0.01;
  /// Experiment D: Gaussian jitter (in cells) applied off the diagonal;
  /// 0 keeps points exactly on x = y as in the paper.
  double diagonal_jitter = 0.0;
  /// Experiment R: number of polyline roads.
  int roads = 8;
  /// Experiment R: fraction of points concentrated at waypoints (towns).
  double town_fraction = 0.25;
};

/// Generates points on `grid` (ids are 0..count-1). Works in any dimension:
/// kClustered places k-d Gaussian blobs, kDiagonal spreads points along the
/// main diagonal x_0 = x_1 = ... = x_{k-1}.
std::vector<index::PointRecord> GeneratePoints(const zorder::GridSpec& grid,
                                               const DataGenConfig& config);

/// Parameters for a correlated catalog pair (the distance-join workload:
/// two surveys of overlapping sky, where some fraction of the second
/// catalog re-observes objects of the first).
struct PairedDataGenConfig {
  /// Shape, count, and seed of the first catalog (R).
  DataGenConfig base;
  /// Points in the second catalog (S); 0 means base.count.
  size_t s_count = 0;
  /// Fraction of S points placed near a random R point (the rest follow
  /// base.distribution independently).
  double match_fraction = 0.5;
  /// Gaussian sigma, in cells, of a matched S point's offset from its R
  /// partner — set it at or below the join radius for those points to pair.
  double match_sigma = 4.0;
  /// S's random stream is base.seed + seed_offset, so R is bit-identical
  /// to GeneratePoints(grid, base) alone.
  uint64_t seed_offset = 1;
};

/// A correlated catalog pair; ids in each catalog are independent
/// (0..count-1 per side).
struct PairedPoints {
  std::vector<index::PointRecord> r;
  std::vector<index::PointRecord> s;
};

/// Generates the pair. Deterministic in base.seed/seed_offset; `r` equals
/// GeneratePoints(grid, config.base).
PairedPoints GeneratePairedPoints(const zorder::GridSpec& grid,
                                  const PairedDataGenConfig& config);

}  // namespace probe::workload

#endif  // PROBE_WORKLOAD_DATAGEN_H_
