#ifndef PROBE_BASELINE_BUCKET_KDTREE_H_
#define PROBE_BASELINE_BUCKET_KDTREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "geometry/box.h"
#include "geometry/point.h"
#include "index/zkd_index.h"

/// \file
/// A paged (bucket) kd tree for like-for-like page-access comparison.
///
/// The paper's experiments measure disk pages accessed; an in-memory kd
/// tree has no pages. This variant stores up to `bucket_capacity` points
/// per leaf — the same capacity as the zkd B+-tree's leaf pages (20 in the
/// paper's setup) — so "leaves visited" is directly comparable to "data
/// pages accessed". The internal structure is the kd tree's brick-wall
/// recursive median partitioning, making this a static cousin of the
/// K-D-B tree [ROBI81].

namespace probe::baseline {

/// Work counters for one bucket-kd-tree query.
struct BucketKdStats {
  /// Leaf buckets (data pages) visited.
  uint64_t leaf_pages = 0;
  /// Internal nodes visited.
  uint64_t internal_nodes = 0;
  /// Points residing on the visited leaves.
  uint64_t entries_on_touched_pages = 0;
  /// Matches reported.
  uint64_t results = 0;

  /// Fraction of retrieved data that was relevant (cf. QueryStats).
  double Efficiency() const {
    if (entries_on_touched_pages == 0) return 1.0;
    return static_cast<double>(results) /
           static_cast<double>(entries_on_touched_pages);
  }
};

/// Static bucketed kd tree built by recursive median splits.
class BucketKdTree {
 public:
  /// Builds over `points`; leaves hold at most `bucket_capacity` points.
  static BucketKdTree Build(int dims,
                            std::span<const index::PointRecord> points,
                            int bucket_capacity);

  /// Region search: ids of points inside `box`.
  std::vector<uint64_t> RangeSearch(const geometry::GridBox& box,
                                    BucketKdStats* stats = nullptr) const;

  /// Total leaf buckets (the structure's page count).
  uint64_t leaf_count() const { return leaf_count_; }

  size_t size() const { return size_; }

 private:
  struct Node {
    // Internal: children valid, split on `axis` at `value` (points with
    // coordinate < value go left). Leaf: children == -1, `first`/`count`
    // index into points_.
    int32_t left = -1;
    int32_t right = -1;
    uint32_t value = 0;
    int8_t axis = -1;
    uint32_t first = 0;
    uint32_t count = 0;
  };

  BucketKdTree() = default;

  int32_t BuildRec(std::vector<index::PointRecord>& working, int lo, int hi,
                   int depth, int bucket_capacity);
  void SearchRec(int32_t node, const geometry::GridBox& box,
                 std::vector<uint64_t>& out, BucketKdStats* stats) const;

  int dims_ = 2;
  int32_t root_ = -1;
  std::vector<Node> nodes_;
  std::vector<index::PointRecord> points_;  // leaf storage, bucket-contiguous
  uint64_t leaf_count_ = 0;
  size_t size_ = 0;
};

}  // namespace probe::baseline

#endif  // PROBE_BASELINE_BUCKET_KDTREE_H_
