#ifndef PROBE_BASELINE_COMPOSITE_INDEX_H_
#define PROBE_BASELINE_COMPOSITE_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "btree/btree.h"
#include "geometry/box.h"
#include "index/zkd_index.h"
#include "zorder/grid.h"

/// \file
/// The conventional DBMS alternative: a composite-key B+-tree.
///
/// Before spatial orderings, the standard way to index two attributes was
/// a B-tree on the concatenated key (all bits of x, then all bits of y) —
/// the lexicographic "brick wall" the paper's Section 2 contrasts with
/// grid orderings. The concatenated order preserves proximity in the
/// *first* attribute only, so a range query degenerates into one scan per
/// distinct leading-attribute value (mitigated here by the classic skip
/// scan). Comparing its page accesses with the zkd tree's isolates the
/// contribution of bit interleaving: same B+-tree, same pages, different
/// bit order.

namespace probe::baseline {

/// Work counters for one composite-index query.
struct CompositeStats {
  uint64_t leaf_pages = 0;
  uint64_t internal_pages = 0;
  uint64_t points_scanned = 0;
  uint64_t seeks = 0;
  uint64_t results = 0;
  uint64_t entries_on_touched_pages = 0;

  double Efficiency() const {
    if (entries_on_touched_pages == 0) return 1.0;
    return static_cast<double>(results) /
           static_cast<double>(entries_on_touched_pages);
  }
};

/// A point index over a B+-tree keyed by coordinate concatenation.
class CompositeIndex {
 public:
  CompositeIndex(const zorder::GridSpec& grid, storage::BufferPool* pool,
                 const btree::BTreeConfig& config = {});

  /// Bulk-loads from `points` (any order).
  static CompositeIndex Build(const zorder::GridSpec& grid,
                              storage::BufferPool* pool,
                              std::span<const index::PointRecord> points,
                              const btree::BTreeConfig& config = {},
                              double fill = 1.0);

  void Insert(const geometry::GridPoint& point, uint64_t id);
  bool Delete(const geometry::GridPoint& point, uint64_t id);

  /// Range query with the multi-attribute skip scan: when the scan leaves
  /// the box, it seeks directly to the next key prefix that can re-enter
  /// it (the composite-order analogue of BIGMIN).
  std::vector<uint64_t> RangeSearch(const geometry::GridBox& box,
                                    CompositeStats* stats = nullptr) const;

  uint64_t size() const { return tree_.size(); }
  btree::BTree& tree() const { return tree_; }

 private:
  btree::ZKey EncodeKey(std::span<const uint32_t> coords) const;
  std::vector<uint32_t> DecodeKey(const btree::ZKey& key) const;

  zorder::GridSpec grid_;
  mutable btree::BTree tree_;
};

}  // namespace probe::baseline

#endif  // PROBE_BASELINE_COMPOSITE_INDEX_H_
