#ifndef PROBE_BASELINE_KDTREE_H_
#define PROBE_BASELINE_KDTREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "geometry/box.h"
#include "geometry/point.h"
#include "index/zkd_index.h"

/// \file
/// The kd tree of Bentley [BENT75] — the paper's comparison point.
///
/// Section 5.3.1 notes that the z-order analysis "matches the performance
/// predicted for kd trees", and the abstract claims performance
/// "comparable to performance of the kd tree". We implement the classic
/// in-memory kd tree (discriminator cycling through the axes, one point
/// per node) so the comparison bench can measure real node visits instead
/// of quoting formulas.

namespace probe::baseline {

/// Work counters for one kd-tree query.
struct KdStats {
  /// Tree nodes visited.
  uint64_t nodes_visited = 0;
  /// Points tested against the query box.
  uint64_t points_checked = 0;
  /// Matches reported.
  uint64_t results = 0;
};

/// Classic kd tree: each node stores one point and discriminates on
/// axis = depth mod k.
class KdTree {
 public:
  explicit KdTree(int dims);

  /// Builds a balanced tree by recursive median splitting. Ties are broken
  /// arbitrarily but deterministically.
  static KdTree Build(int dims, std::span<const index::PointRecord> points);

  /// Inserts one point (unbalanced, as in [BENT75]).
  void Insert(const geometry::GridPoint& point, uint64_t id);

  /// Region search: ids of points inside `box`.
  std::vector<uint64_t> RangeSearch(const geometry::GridBox& box,
                                    KdStats* stats = nullptr) const;

  size_t size() const { return nodes_.size(); }

  /// Depth of the deepest node (0 for an empty tree).
  int Depth() const;

 private:
  struct Node {
    geometry::GridPoint point;
    uint64_t id = 0;
    int32_t left = -1;
    int32_t right = -1;
    int8_t axis = 0;
  };

  int32_t BuildRec(std::vector<index::PointRecord>& points, int lo, int hi,
                   int depth);
  void SearchRec(int32_t node, const geometry::GridBox& box,
                 std::vector<uint64_t>& out, KdStats* stats) const;
  int DepthRec(int32_t node) const;

  int dims_;
  int32_t root_ = -1;
  std::vector<Node> nodes_;
};

}  // namespace probe::baseline

#endif  // PROBE_BASELINE_KDTREE_H_
