#include "baseline/bucket_kdtree.h"

#include <algorithm>
#include <cassert>

namespace probe::baseline {

BucketKdTree BucketKdTree::Build(int dims,
                                 std::span<const index::PointRecord> points,
                                 int bucket_capacity) {
  assert(dims >= 1 && dims <= geometry::GridPoint::kMaxDims);
  assert(bucket_capacity >= 1);
  BucketKdTree tree;
  tree.dims_ = dims;
  tree.size_ = points.size();
  std::vector<index::PointRecord> working(points.begin(), points.end());
  tree.points_.reserve(working.size());
  tree.root_ = tree.BuildRec(working, 0, static_cast<int>(working.size()), 0,
                             bucket_capacity);
  return tree;
}

int32_t BucketKdTree::BuildRec(std::vector<index::PointRecord>& working,
                               int lo, int hi, int depth,
                               int bucket_capacity) {
  if (lo >= hi) return -1;
  Node node;
  if (hi - lo <= bucket_capacity) {
    node.first = static_cast<uint32_t>(points_.size());
    node.count = static_cast<uint32_t>(hi - lo);
    for (int i = lo; i < hi; ++i) points_.push_back(working[i]);
    ++leaf_count_;
    nodes_.push_back(node);
    return static_cast<int32_t>(nodes_.size() - 1);
  }
  const int axis = depth % dims_;
  const int mid = (lo + hi) / 2;
  std::nth_element(
      working.begin() + lo, working.begin() + mid, working.begin() + hi,
      [axis](const index::PointRecord& a, const index::PointRecord& b) {
        if (a.point[axis] != b.point[axis]) {
          return a.point[axis] < b.point[axis];
        }
        return a.id < b.id;
      });
  node.axis = static_cast<int8_t>(axis);
  node.value = working[mid].point[axis];
  const int32_t self = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(node);
  const int32_t left = BuildRec(working, lo, mid, depth + 1, bucket_capacity);
  const int32_t right = BuildRec(working, mid, hi, depth + 1, bucket_capacity);
  nodes_[self].left = left;
  nodes_[self].right = right;
  return self;
}

std::vector<uint64_t> BucketKdTree::RangeSearch(const geometry::GridBox& box,
                                                BucketKdStats* stats) const {
  assert(box.dims() == dims_);
  std::vector<uint64_t> out;
  SearchRec(root_, box, out, stats);
  if (stats != nullptr) stats->results = out.size();
  return out;
}

void BucketKdTree::SearchRec(int32_t node_idx, const geometry::GridBox& box,
                             std::vector<uint64_t>& out,
                             BucketKdStats* stats) const {
  if (node_idx < 0) return;
  const Node& node = nodes_[node_idx];
  if (node.axis < 0) {
    if (stats != nullptr) {
      ++stats->leaf_pages;
      stats->entries_on_touched_pages += node.count;
    }
    for (uint32_t i = node.first; i < node.first + node.count; ++i) {
      if (box.ContainsPoint(points_[i].point)) out.push_back(points_[i].id);
    }
    return;
  }
  if (stats != nullptr) ++stats->internal_nodes;
  const auto& range = box.range(node.axis);
  // Coordinates in the left partition are <= value (ties broken by record
  // id may land on either side), so the left test must be inclusive.
  if (range.lo <= node.value) SearchRec(node.left, box, out, stats);
  if (range.hi >= node.value) SearchRec(node.right, box, out, stats);
}

}  // namespace probe::baseline
