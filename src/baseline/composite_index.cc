#include "baseline/composite_index.h"

#include <algorithm>
#include <cassert>

namespace probe::baseline {

namespace {

using btree::LeafEntry;
using btree::ZKey;

}  // namespace

CompositeIndex::CompositeIndex(const zorder::GridSpec& grid,
                               storage::BufferPool* pool,
                               const btree::BTreeConfig& config)
    : grid_(grid), tree_(pool, config) {
  assert(grid_.Valid());
}

ZKey CompositeIndex::EncodeKey(std::span<const uint32_t> coords) const {
  assert(coords.size() == static_cast<size_t>(grid_.dims));
  const int d = grid_.bits_per_dim;
  uint64_t value = 0;
  for (int i = 0; i < grid_.dims; ++i) {
    assert(coords[i] < grid_.side());
    value = (value << d) | coords[i];
  }
  return ZKey::FromZValue(
      zorder::ZValue::FromInteger(value, grid_.total_bits()));
}

std::vector<uint32_t> CompositeIndex::DecodeKey(const ZKey& key) const {
  const int d = grid_.bits_per_dim;
  uint64_t value = key.ToZValue().ToInteger();
  std::vector<uint32_t> coords(grid_.dims);
  for (int i = grid_.dims - 1; i >= 0; --i) {
    coords[i] = static_cast<uint32_t>(value & ((1ULL << d) - 1));
    value >>= d;
  }
  return coords;
}

CompositeIndex CompositeIndex::Build(const zorder::GridSpec& grid,
                                     storage::BufferPool* pool,
                                     std::span<const index::PointRecord> points,
                                     const btree::BTreeConfig& config,
                                     double fill) {
  CompositeIndex index(grid, pool, config);
  std::vector<LeafEntry> entries;
  entries.reserve(points.size());
  for (const auto& record : points) {
    entries.push_back(
        LeafEntry{index.EncodeKey(record.point.coords()), record.id});
  }
  std::sort(entries.begin(), entries.end(),
            [](const LeafEntry& a, const LeafEntry& b) {
              if (a.key != b.key) return a.key < b.key;
              return a.payload < b.payload;
            });
  index.tree_ = btree::BTree::BulkLoad(pool, entries, config, fill);
  return index;
}

void CompositeIndex::Insert(const geometry::GridPoint& point, uint64_t id) {
  tree_.Insert(EncodeKey(point.coords()), id);
}

bool CompositeIndex::Delete(const geometry::GridPoint& point, uint64_t id) {
  return tree_.Delete(EncodeKey(point.coords()), id);
}

std::vector<uint64_t> CompositeIndex::RangeSearch(
    const geometry::GridBox& box, CompositeStats* stats) const {
  assert(box.dims() == grid_.dims);
  const int k = grid_.dims;
  std::vector<uint64_t> results;
  btree::BTree::Cursor cursor(&tree_);
  uint64_t points_scanned = 0;
  uint64_t seeks = 0;

  // Start at the box's low corner.
  std::vector<uint32_t> target(k);
  for (int i = 0; i < k; ++i) target[i] = box.range(i).lo;
  ++seeks;
  bool have = cursor.Seek(EncodeKey(target));

  while (have) {
    const std::vector<uint32_t> coords = DecodeKey(cursor.entry().key);
    ++points_scanned;
    // First dimension (most significant in the key) that leaves the box.
    int violated = -1;
    bool below = false;
    for (int i = 0; i < k; ++i) {
      if (coords[i] < box.range(i).lo) {
        violated = i;
        below = true;
        break;
      }
      if (coords[i] > box.range(i).hi) {
        violated = i;
        break;
      }
    }
    if (violated < 0) {
      results.push_back(cursor.entry().payload);
      have = cursor.Next();
      continue;
    }
    // Skip scan: jump to the smallest key prefix that can re-enter.
    std::vector<uint32_t> next = coords;
    if (below) {
      // Raise the violated dimension (and everything after) to the box's
      // low corner; earlier dimensions stay.
      for (int i = violated; i < k; ++i) next[i] = box.range(i).lo;
    } else {
      // The violated dimension overshot: carry into the previous one.
      int carry = violated - 1;
      while (carry >= 0 && next[carry] >= box.range(carry).hi) --carry;
      if (carry < 0) break;  // no prefix can re-enter: done
      ++next[carry];
      for (int i = carry + 1; i < k; ++i) next[i] = box.range(i).lo;
    }
    ++seeks;
    have = cursor.Seek(EncodeKey(next));
  }

  if (stats != nullptr) {
    stats->leaf_pages = cursor.leaf_loads();
    stats->internal_pages = cursor.internal_loads();
    stats->points_scanned = points_scanned;
    stats->seeks = seeks;
    stats->results = results.size();
    stats->entries_on_touched_pages = cursor.leaf_entries_seen();
  }
  return results;
}

}  // namespace probe::baseline
