#include "baseline/kdtree.h"

#include <algorithm>
#include <cassert>

namespace probe::baseline {

KdTree::KdTree(int dims) : dims_(dims) {
  assert(dims_ >= 1 && dims_ <= geometry::GridPoint::kMaxDims);
}

KdTree KdTree::Build(int dims, std::span<const index::PointRecord> points) {
  KdTree tree(dims);
  std::vector<index::PointRecord> working(points.begin(), points.end());
  tree.nodes_.reserve(working.size());
  tree.root_ = tree.BuildRec(working, 0, static_cast<int>(working.size()), 0);
  return tree;
}

int32_t KdTree::BuildRec(std::vector<index::PointRecord>& points, int lo,
                         int hi, int depth) {
  if (lo >= hi) return -1;
  const int axis = depth % dims_;
  const int mid = (lo + hi) / 2;
  std::nth_element(points.begin() + lo, points.begin() + mid,
                   points.begin() + hi,
                   [axis](const index::PointRecord& a,
                          const index::PointRecord& b) {
                     if (a.point[axis] != b.point[axis]) {
                       return a.point[axis] < b.point[axis];
                     }
                     return a.id < b.id;
                   });
  Node node;
  node.point = points[mid].point;
  node.id = points[mid].id;
  node.axis = static_cast<int8_t>(axis);
  const int32_t self = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(node);
  const int32_t left = BuildRec(points, lo, mid, depth + 1);
  const int32_t right = BuildRec(points, mid + 1, hi, depth + 1);
  nodes_[self].left = left;
  nodes_[self].right = right;
  return self;
}

void KdTree::Insert(const geometry::GridPoint& point, uint64_t id) {
  assert(point.dims() == dims_);
  Node fresh;
  fresh.point = point;
  fresh.id = id;
  if (root_ < 0) {
    fresh.axis = 0;
    root_ = static_cast<int32_t>(nodes_.size());
    nodes_.push_back(fresh);
    return;
  }
  int32_t current = root_;
  int depth = 0;
  for (;;) {
    Node& node = nodes_[current];
    const int axis = depth % dims_;
    int32_t& branch =
        point[axis] < node.point[axis] ? node.left : node.right;
    if (branch < 0) {
      fresh.axis = static_cast<int8_t>((depth + 1) % dims_);
      branch = static_cast<int32_t>(nodes_.size());
      nodes_.push_back(fresh);
      return;
    }
    current = branch;
    ++depth;
  }
}

std::vector<uint64_t> KdTree::RangeSearch(const geometry::GridBox& box,
                                          KdStats* stats) const {
  assert(box.dims() == dims_);
  std::vector<uint64_t> out;
  SearchRec(root_, box, out, stats);
  if (stats != nullptr) stats->results = out.size();
  return out;
}

void KdTree::SearchRec(int32_t node_idx, const geometry::GridBox& box,
                       std::vector<uint64_t>& out, KdStats* stats) const {
  if (node_idx < 0) return;
  const Node& node = nodes_[node_idx];
  if (stats != nullptr) {
    ++stats->nodes_visited;
    ++stats->points_checked;
  }
  if (box.ContainsPoint(node.point)) out.push_back(node.id);
  const int axis = node.axis;
  const auto& range = box.range(axis);
  // Prune subtrees whose half-space cannot meet the query interval. The
  // left test is <= (not <) because the balanced Build breaks coordinate
  // ties by record id, which can leave equal coordinates on the left.
  if (range.lo <= node.point[axis]) SearchRec(node.left, box, out, stats);
  if (range.hi >= node.point[axis]) SearchRec(node.right, box, out, stats);
}

int KdTree::Depth() const { return DepthRec(root_); }

int KdTree::DepthRec(int32_t node) const {
  if (node < 0) return 0;
  return 1 + std::max(DepthRec(nodes_[node].left), DepthRec(nodes_[node].right));
}

}  // namespace probe::baseline
