#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace probe::util {

void Summary::Add(double x) { values_.push_back(x); }

double Summary::Mean() const {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double Summary::StdDev() const {
  if (values_.size() < 2) return 0.0;
  const double mean = Mean();
  double ss = 0.0;
  for (double v : values_) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / static_cast<double>(values_.size() - 1));
}

double Summary::Min() const {
  if (values_.empty()) return 0.0;
  return *std::min_element(values_.begin(), values_.end());
}

double Summary::Max() const {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

double Summary::Sum() const {
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum;
}

double Summary::Percentile(double q) const {
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double LogLogSlope(const std::vector<double>& x, const std::vector<double>& y) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  size_t n = 0;
  for (size_t i = 0; i < x.size() && i < y.size(); ++i) {
    if (x[i] <= 0 || y[i] <= 0) continue;
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++n;
  }
  if (n < 2) return 0.0;
  const double denom = static_cast<double>(n) * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  return (static_cast<double>(n) * sxy - sx * sy) / denom;
}

}  // namespace probe::util
