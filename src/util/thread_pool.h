#ifndef PROBE_UTIL_THREAD_POOL_H_
#define PROBE_UTIL_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

/// \file
/// A fixed-size thread pool for the parallel query paths.
///
/// The paper reduces every spatial retrieval to merges over *disjoint*
/// z intervals (Sections 3.3 and 4), and disjoint intervals can be worked
/// on independently. This pool is the execution substrate: a plain
/// shared-queue design (no work stealing — partition counts are small and
/// chosen by the caller, so a single queue is never contended enough to
/// matter) with a futures API for irregular tasks and ParallelFor for
/// fixed fan-out. The calling thread always participates, so a pool of
/// `threads` workers runs `threads + 1` lanes and `ThreadPool(0)` degrades
/// gracefully to serial execution on the caller.

namespace probe::obs {
struct ThreadPoolMetrics;
}  // namespace probe::obs

namespace probe::util {

/// Fixed-size shared-queue thread pool.
///
/// Task submission and ParallelFor are thread-safe. Destruction drains the
/// queue: already-submitted tasks run to completion before the workers
/// exit.
class ThreadPool {
 public:
  /// Spawns `threads` workers. 0 is allowed: every call then runs inline
  /// on the calling thread (useful as the serial baseline of a sweep).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (not counting the calling thread).
  int thread_count() const { return static_cast<int>(workers_.size()); }

  /// Number of parallel lanes a caller-blocking operation effectively has:
  /// the workers plus the calling thread itself.
  int lanes() const { return thread_count() + 1; }

  /// Hardware concurrency with a sane floor (std::thread reports 0 when it
  /// cannot tell).
  static int DefaultThreads();

  /// Publishes queue depth, task count, and enqueue-to-completion latency
  /// to `metrics` (e.g. obs::ThreadPoolMetrics::Default()). Opt-in: with
  /// no metrics attached — the default — submission is untouched. The
  /// pointer must outlive the pool; nullptr detaches. The pointer is
  /// atomic, so enabling while submissions are in flight is safe (tasks
  /// already wrapped keep their metrics; unwrapped ones stay unwrapped).
  void EnableMetrics(obs::ThreadPoolMetrics* metrics) {
    metrics_.store(metrics, std::memory_order_release);
  }

  /// Enqueues `fn` and returns a future for its result. The future also
  /// carries any exception `fn` throws.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Enqueue([task]() { (*task)(); });
    return future;
  }

  /// Runs `fn(i)` for every i in [0, n), spread across the workers and the
  /// calling thread, and blocks until all calls have returned. Iterations
  /// are independent tasks: `fn` must be safe to call concurrently with
  /// itself. The first exception thrown by any iteration is rethrown on
  /// the caller.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Graceful shutdown: drain, then join, bounded by `deadline`. Waits for
  /// queued and in-flight tasks to finish; when the deadline passes first,
  /// tasks still *queued* are discarded (their futures report
  /// broken_promise) and only in-flight ones are awaited — so stopping a
  /// server is bounded by its longest single task, never by queue length.
  /// Tasks submitted after shutdown begins run inline on the submitting
  /// thread (ParallelFor likewise degrades to serial). Idempotent; returns
  /// true iff everything queued at shutdown time completed.
  bool Shutdown(std::chrono::milliseconds deadline);

 private:
  void Enqueue(std::function<void()> task);

  // Pops queued tasks until stopping_. Deliberately the ONLY place queue
  // tasks are popped: a ParallelFor caller drains its own batch via the
  // shared iteration counter and never executes foreign queue tasks, so a
  // lane that blocks inside fn (e.g. on a condition another thread will
  // signal) can never have picked up an unrelated task that waits, in
  // turn, on that lane — a caller-drain helper here would reintroduce
  // that deadlock.
  void WorkerLoop();

  // Completion bookkeeping for WorkerLoop: decrements in_flight_ and
  // wakes Shutdown's drain wait at idle.
  void FinishTask();

  // Lock hierarchy: mutex_ is a leaf — no other lock in the system is
  // acquired while it is held (tasks run outside it).
  Mutex mutex_;
  CondVar cv_;
  // Signalled when the pool goes idle (empty queue, nothing in flight);
  // Shutdown's drain wait sleeps on it.
  CondVar idle_cv_;
  std::deque<std::function<void()>> queue_ PROBE_GUARDED_BY(mutex_);
  bool stopping_ PROBE_GUARDED_BY(mutex_) = false;
  bool draining_ PROBE_GUARDED_BY(mutex_) = false;
  size_t in_flight_ PROBE_GUARDED_BY(mutex_) = 0;
  // Written only in the constructor and (after every worker joined) in
  // Shutdown; workers never touch it, so it needs no guard.
  std::vector<std::thread> workers_;
  std::atomic<obs::ThreadPoolMetrics*> metrics_{nullptr};
};

}  // namespace probe::util

#endif  // PROBE_UTIL_THREAD_POOL_H_
