#ifndef PROBE_UTIL_STATS_H_
#define PROBE_UTIL_STATS_H_

#include <cstddef>
#include <vector>

/// \file
/// Summary statistics for experiment drivers.
///
/// The paper reports page accesses and efficiency "averaged over several
/// queries" (five random locations per shape/volume cell). Benches use this
/// accumulator to print means, extremes, and dispersion for each cell.

namespace probe::util {

/// Streaming accumulator for a sample of doubles.
class Summary {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Number of observations added so far.
  size_t count() const { return values_.size(); }

  /// Arithmetic mean; 0 when empty.
  double Mean() const;

  /// Sample standard deviation (n-1 denominator); 0 when count < 2.
  double StdDev() const;

  double Min() const;
  double Max() const;
  double Sum() const;

  /// Linear-interpolation percentile, q in [0, 1]. Requires count > 0.
  double Percentile(double q) const;

 private:
  std::vector<double> values_;
};

/// Least-squares fit of log(y) = a + b*log(x); returns the exponent b.
/// Used to verify the O(v*N) and O(N^(1-t/k)) growth claims of Section 5.3.
/// Points with x <= 0 or y <= 0 are skipped. Returns 0 with fewer than two
/// usable points.
double LogLogSlope(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace probe::util

#endif  // PROBE_UTIL_STATS_H_
