#ifndef PROBE_UTIL_RNG_H_
#define PROBE_UTIL_RNG_H_

#include <cstdint>

/// \file
/// Deterministic pseudo-random number generation for workloads and tests.
///
/// All experiments in the reproduction are seeded so that every run of a
/// bench binary prints identical tables. We use xoshiro256++ seeded through
/// SplitMix64, which is fast, has a long period, and is trivially
/// reimplementable from its published description.

namespace probe::util {

/// SplitMix64 step: used to expand a single 64-bit seed into xoshiro state.
uint64_t SplitMix64(uint64_t& state);

/// xoshiro256++ generator with convenience samplers.
///
/// Not a cryptographic generator; statistical quality is more than adequate
/// for the synthetic point distributions of Section 5.3.2.
class Rng {
 public:
  /// Seeds the full 256-bit state from `seed` via SplitMix64.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit output.
  uint64_t Next();

  /// Uniform integer in [0, bound). Requires bound > 0. Uses rejection
  /// sampling so the distribution is exactly uniform.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Standard normal variate (Box-Muller; one value per call, the pair's
  /// second half is cached).
  double NextGaussian();

 private:
  uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace probe::util

#endif  // PROBE_UTIL_RNG_H_
