#include "util/ppm.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace probe::util {

PpmImage::PpmImage(int width, int height)
    : width_(width),
      height_(height),
      pixels_(static_cast<size_t>(width) * height * 3, 255) {
  assert(width_ > 0 && height_ > 0);
}

void PpmImage::Set(int x, int y, uint8_t r, uint8_t g, uint8_t b) {
  assert(x >= 0 && x < width_ && y >= 0 && y < height_);
  const size_t row = static_cast<size_t>(height_ - 1 - y);  // flip to raster
  const size_t offset = (row * width_ + static_cast<size_t>(x)) * 3;
  pixels_[offset] = r;
  pixels_[offset + 1] = g;
  pixels_[offset + 2] = b;
}

void PpmImage::Fill(uint8_t r, uint8_t g, uint8_t b) {
  for (size_t i = 0; i < pixels_.size(); i += 3) {
    pixels_[i] = r;
    pixels_[i + 1] = g;
    pixels_[i + 2] = b;
  }
}

bool PpmImage::WriteTo(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  std::fprintf(file, "P6\n%d %d\n255\n", width_, height_);
  const size_t written =
      std::fwrite(pixels_.data(), 1, pixels_.size(), file);
  std::fclose(file);
  return written == pixels_.size();
}

void CategoricalColor(uint64_t index, uint8_t* r, uint8_t* g, uint8_t* b) {
  // Golden-ratio hue walk with fixed saturation/value: adjacent indices
  // land far apart on the color wheel.
  const double hue = std::fmod(static_cast<double>(index) * 0.61803398875,
                               1.0) *
                     6.0;
  const double saturation = 0.55;
  const double value = 0.95;
  const int sector = static_cast<int>(hue);
  const double f = hue - sector;
  const double p = value * (1 - saturation);
  const double q = value * (1 - saturation * f);
  const double t = value * (1 - saturation * (1 - f));
  double red = 0, green = 0, blue = 0;
  switch (sector % 6) {
    case 0: red = value, green = t, blue = p; break;
    case 1: red = q, green = value, blue = p; break;
    case 2: red = p, green = value, blue = t; break;
    case 3: red = p, green = q, blue = value; break;
    case 4: red = t, green = p, blue = value; break;
    case 5: red = value, green = p, blue = q; break;
  }
  *r = static_cast<uint8_t>(red * 255);
  *g = static_cast<uint8_t>(green * 255);
  *b = static_cast<uint8_t>(blue * 255);
}

}  // namespace probe::util
