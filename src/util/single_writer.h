#ifndef PROBE_UTIL_SINGLE_WRITER_H_
#define PROBE_UTIL_SINGLE_WRITER_H_

#include <atomic>

#include "probe/check.h"

/// \file
/// Runtime proof of the single-writer contract.
///
/// TxnPager's *mutating* entry points (Allocate/Write/Commit/Checkpoint)
/// are documented "single-writer, like the B-tree": no lock of their own,
/// because exactly one thread mutates them at a time. That contract is
/// upheld *above* them — batch mutation serializes on DurableIndex's
/// apply lock — which also means there is no mutex here for the clang
/// thread-safety analysis to reason about: the static proof covers
/// everything that locks (including the Wal, which since group commit is
/// internally synchronized and takes concurrent appenders directly), and
/// this checker covers the one discipline that deliberately doesn't.
///
/// SingleWriterGuard is an atomic occupancy flag embedded in the
/// single-writer class; SingleWriterScope CASes it on entry and aborts if
/// another scope is already inside — i.e. it detects *overlapping*
/// mutations on any schedule, while correct hand-offs between threads
/// (shard batches running on different pool workers in successive queries)
/// pass. Unlike a same-thread checker it cannot false-positive on
/// ownership transfer, and unlike TSan it costs one relaxed CAS, so it is
/// compiled in whenever the audit layer is (PROBE_AUDIT_ENABLED) and
/// vanishes entirely from Release.

namespace probe::util {

#if PROBE_AUDIT_ENABLED

/// Occupancy flag; embed one per single-writer object.
class SingleWriterGuard {
 public:
  SingleWriterGuard() = default;
  SingleWriterGuard(const SingleWriterGuard&) = delete;
  SingleWriterGuard& operator=(const SingleWriterGuard&) = delete;

 private:
  friend class SingleWriterScope;
  std::atomic<bool> busy_{false};
};

/// RAII occupancy claim over one mutating call.
class SingleWriterScope {
 public:
  explicit SingleWriterScope(SingleWriterGuard* guard, const char* where)
      : guard_(guard) {
    bool expected = false;
    if (!guard_->busy_.compare_exchange_strong(expected, true,
                                               std::memory_order_acquire)) {
      ::probe::check::AuditFailure(
          __FILE__, __LINE__, "single-writer contract violated", where);
    }
  }

  ~SingleWriterScope() {
    guard_->busy_.store(false, std::memory_order_release);
  }

  SingleWriterScope(const SingleWriterScope&) = delete;
  SingleWriterScope& operator=(const SingleWriterScope&) = delete;

 private:
  SingleWriterGuard* guard_;
};

#else  // !PROBE_AUDIT_ENABLED — both compile to empty objects.

class SingleWriterGuard {};

class SingleWriterScope {
 public:
  explicit SingleWriterScope(SingleWriterGuard*, const char*) {}
};

#endif  // PROBE_AUDIT_ENABLED

}  // namespace probe::util

#endif  // PROBE_UTIL_SINGLE_WRITER_H_
