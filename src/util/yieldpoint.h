#ifndef PROBE_UTIL_YIELDPOINT_H_
#define PROBE_UTIL_YIELDPOINT_H_

#include <cstdint>

/// \file
/// Deterministic schedule exploration at named yield points.
///
/// TSan finds the races a particular run happens to schedule; the crash
/// matrix kills the WAL at every record boundary. This is the analogous
/// tool for *interleavings*: concurrency-sensitive code marks its hand-off
/// points with `util::SchedulePoint("wal.leader")`, and a test installs a
/// ScheduleHarness that decides, at every passage, whether the calling
/// thread pauses there — a pure function of (seed, thread ordinal, point
/// name, per-thread visit count). Sweeping seeds sweeps pause patterns,
/// which perturbs which thread wins leader election, whether a follower
/// arrives before or after the sync, whether an epoch publishes before a
/// reader pins — the schedules a free-running run almost never produces.
///
/// Determinism and liveness:
///
///   * The pause *decision* is deterministic given the seed and the
///     thread's ordinal (tests assign ordinals explicitly via
///     ScheduleThreadOrdinal; unregistered threads get arrival order).
///     What the decision *causes* still depends on the OS scheduler — the
///     harness makes rare orderings common and reproducible in
///     distribution, not cycle-exact.
///   * A paused thread waits until `max_wait_steps` other passages occur,
///     bounded by `max_wait_micros` — so a pause can never deadlock, even
///     at a point reached while holding a lock every other thread needs.
///
/// When no harness is installed (all production code, all other tests), a
/// point costs one atomic load and a branch. Points therefore belong on
/// commit/publish paths, not per-key hot loops.
///
/// Lifecycle: at most one harness at a time; join every thread that may
/// touch a point before destroying it.

namespace probe::util {

namespace internal {
struct ScheduleImpl;
}  // namespace internal

/// Knobs of one schedule exploration.
struct ScheduleOptions {
  /// Selects the pause pattern; sweep this.
  uint64_t seed = 1;
  /// A thread pauses at a point with probability 1/pause_one_in (0
  /// disables pausing; the harness then only counts passages).
  uint32_t pause_one_in = 4;
  /// A pause ends after this many passages by other threads...
  uint32_t max_wait_steps = 6;
  /// ...or after this wall-clock bound, whichever comes first.
  uint32_t max_wait_micros = 2000;
};

/// Passage counters of one harness session.
struct ScheduleStats {
  uint64_t points = 0;    ///< SchedulePoint passages observed.
  uint64_t pauses = 0;    ///< Passages that paused.
  uint64_t timeouts = 0;  ///< Pauses ended by the wall-clock bound.
};

/// RAII installation of the process-wide schedule harness.
class ScheduleHarness {
 public:
  explicit ScheduleHarness(const ScheduleOptions& options);
  ~ScheduleHarness();

  ScheduleHarness(const ScheduleHarness&) = delete;
  ScheduleHarness& operator=(const ScheduleHarness&) = delete;

  ScheduleStats stats() const;

 private:
  internal::ScheduleImpl* impl_;
};

/// Marks a schedule-sensitive point. No-op (one atomic load) unless a
/// ScheduleHarness is installed. `name` must be a literal or otherwise
/// outlive the call; decisions hash its characters, so the same name means
/// the same point across runs and builds.
void SchedulePoint(const char* name);

/// Fixes the calling thread's ordinal for pause decisions. Tests call this
/// first thing in each spawned thread so decisions do not depend on which
/// thread reaches its first point first.
void ScheduleThreadOrdinal(uint32_t ordinal);

}  // namespace probe::util

#endif  // PROBE_UTIL_YIELDPOINT_H_
