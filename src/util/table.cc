#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>

namespace probe::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow() { rows_.emplace_back(); }

void Table::Cell(const std::string& value) { rows_.back().push_back(value); }

void Table::Cell(int64_t value) { Cell(std::to_string(value)); }

void Table::Cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  Cell(std::string(buf));
}

void Table::Print(std::ostream& out) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << "  " << std::setw(static_cast<int>(widths[c])) << cell;
    }
    out << '\n';
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace probe::util
