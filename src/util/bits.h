#ifndef PROBE_UTIL_BITS_H_
#define PROBE_UTIL_BITS_H_

#include <bit>
#include <cstdint>

/// \file
/// Small bit-manipulation helpers shared across the library.
///
/// The z-order machinery of the paper is, at bottom, bit surgery on
/// coordinate words: interleaving, prefix masking, and locating the span
/// between the first and last 1 bits (the quantity that drives the element
/// count E(U,V) of Section 5.1). These helpers keep that surgery in one
/// audited place.

namespace probe::util {

/// Returns a mask with the `n` most significant bits of a 64-bit word set.
/// `n` must be in [0, 64].
constexpr uint64_t HighMask(int n) {
  // A shift by 64 is undefined behaviour, so 0 and 64 are special-cased via
  // the branch rather than computed.
  return n == 0 ? 0ULL : ~0ULL << (64 - n);
}

/// Returns a mask with the `n` least significant bits set. `n` in [0, 64].
constexpr uint64_t LowMask(int n) {
  return n == 0 ? 0ULL : ~0ULL >> (64 - n);
}

/// Index (0 = most significant) of the highest set bit. Requires x != 0.
constexpr int HighestSetBit(uint64_t x) { return std::countl_zero(x); }

/// Index counted from the least significant end of the lowest set bit.
/// Requires x != 0.
constexpr int LowestSetBit(uint64_t x) { return std::countr_zero(x); }

/// Number of bit positions between the first and last 1 bits, inclusive.
/// Zero when x == 0. This is the "bit span" that Section 5.1 identifies as
/// the dominant factor in the element count of a box decomposition.
constexpr int BitSpan(uint64_t x) {
  if (x == 0) return 0;
  return 64 - std::countl_zero(x) - std::countr_zero(x);
}

/// Rounds `x` up to the nearest multiple of 2^m (the grid-coarsening
/// construction of Section 5.1: "replace U by U' such that U' >= U and the
/// last m bits of U' are zero").
constexpr uint64_t RoundUpToZeroBits(uint64_t x, int m) {
  // Phrased via LowMask so the shift stays defined over the whole legal
  // range [0, 64]; m == 64 wraps to 0, the only 64-bit multiple of 2^64.
  return (x + LowMask(m)) & ~LowMask(m);
}

/// True iff x is a power of two (and nonzero).
constexpr bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Smallest power of two >= x. Requires x >= 1 and x <= 2^63.
constexpr uint64_t CeilPowerOfTwo(uint64_t x) { return std::bit_ceil(x); }

/// Integer base-2 logarithm, rounded down. Requires x != 0.
constexpr int FloorLog2(uint64_t x) { return 63 - std::countl_zero(x); }

/// Integer base-2 logarithm, rounded up. Requires x != 0.
constexpr int CeilLog2(uint64_t x) {
  return x == 1 ? 0 : 64 - std::countl_zero(x - 1);
}

}  // namespace probe::util

#endif  // PROBE_UTIL_BITS_H_
