#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>

#include "obs/runtime_metrics.h"
#include "util/mutex.h"

namespace probe::util {

ThreadPool::ThreadPool(int threads) {
  const int count = std::max(0, threads);
  workers_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mutex_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::Shutdown(std::chrono::milliseconds deadline) {
  std::deque<std::function<void()>> dropped;
  bool drained = true;
  {
    MutexLock lock(&mutex_);
    if (stopping_) return true;  // already shut down (or being destroyed)
    draining_ = true;
    const auto until = std::chrono::steady_clock::now() + deadline;
    // Explicit wait loop (not a predicate lambda) so every guarded access
    // stays lexically under the lock the analysis sees.
    while (!(queue_.empty() && in_flight_ == 0)) {
      if (idle_cv_.WaitUntil(&mutex_, until) == std::cv_status::timeout &&
          !(queue_.empty() && in_flight_ == 0)) {
        drained = false;
        break;
      }
    }
    if (!drained) dropped.swap(queue_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  // Destroying the dropped tasks outside the lock breaks their futures
  // (broken_promise), which is how waiters learn their work was shed.
  dropped.clear();
  return drained;
}

int ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : static_cast<int>(hw);
}

void ThreadPool::Enqueue(std::function<void()> task) {
  obs::ThreadPoolMetrics* m = metrics_.load(std::memory_order_acquire);
  if (m != nullptr && obs::Enabled()) {
    // Wrap rather than instrument the queue itself: the wrapper runs on
    // whichever worker dequeues the task, and also covers tasks run
    // inline on the submitter during shutdown.
    m->queue_depth->Add(1);
    const auto enqueued = std::chrono::steady_clock::now();
    task = [m, enqueued, inner = std::move(task)]() {
      m->queue_depth->Add(-1);
      inner();
      m->tasks->Increment();
      m->task_ms->Observe(std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - enqueued)
                              .count());
    };
  }
  {
    MutexLock lock(&mutex_);
    if (!draining_) {
      queue_.push_back(std::move(task));
      task = nullptr;
    }
  }
  if (task) {
    // The pool is shutting down (or has shut down): run on the submitter
    // so no work is silently lost and no queue grows behind a drain.
    task();
    return;
  }
  cv_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mutex_);
      while (!stopping_ && queue_.empty()) cv_.Wait(&mutex_);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    FinishTask();
  }
}

void ThreadPool::FinishTask() {
  MutexLock lock(&mutex_);
  --in_flight_;
  if (draining_ && queue_.empty() && in_flight_ == 0) idle_cv_.NotifyAll();
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Shared iteration counter: lanes grab indices until exhausted. The
  // caller enqueues one helper per worker, then drains alongside them.
  //
  // Lifetime/visibility contract (TSan-audited): `fn` is captured by
  // reference, which is safe because the caller blocks until done == n and
  // a lane only touches fn for a claimed index i < n — once every claimed
  // index has been counted done, no lane is inside fn or can enter it
  // again. `state` is a shared_ptr so stragglers that lose the final
  // next.fetch_add race can still read it after the caller returns. The
  // acq_rel on done pairs with the acquire load in the wait predicate, so
  // every write fn made is visible to the caller before ParallelFor
  // returns.
  struct State {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::atomic<bool> failed{false};
    Mutex error_mutex;
    std::exception_ptr error PROBE_GUARDED_BY(error_mutex);
    Mutex done_mutex;
    CondVar done_cv;
  };
  auto state = std::make_shared<State>();

  auto run_lane = [state, n, &fn]() {
    for (;;) {
      const size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        fn(i);
      } catch (...) {
        if (!state->failed.exchange(true)) {
          MutexLock lock(&state->error_mutex);
          state->error = std::current_exception();
        }
      }
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        MutexLock lock(&state->done_mutex);
        state->done_cv.NotifyAll();
      }
    }
  };

  const size_t helpers = std::min(workers_.size(), n - 1);
  for (size_t h = 0; h < helpers; ++h) Enqueue(run_lane);
  run_lane();

  // All indices are claimed; wait for in-flight iterations on workers.
  {
    MutexLock lock(&state->done_mutex);
    while (state->done.load(std::memory_order_acquire) != n) {
      state->done_cv.Wait(&state->done_mutex);
    }
  }
  if (state->failed.load()) {
    MutexLock lock(&state->error_mutex);
    std::rethrow_exception(state->error);
  }
}

}  // namespace probe::util
