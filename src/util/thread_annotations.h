#ifndef PROBE_UTIL_THREAD_ANNOTATIONS_H_
#define PROBE_UTIL_THREAD_ANNOTATIONS_H_

/// \file
/// Clang Thread Safety Analysis annotations.
///
/// These macros attach lock-discipline facts to types, members, and
/// functions so that a clang build with `-Wthread-safety -Werror` *proves*
/// the discipline on every path at compile time — the static complement to
/// the TSan tier, which can only observe the schedules the test box happens
/// to run. Under any other compiler (the default container ships gcc) every
/// macro expands to nothing, so the annotations are free documentation.
///
/// The vocabulary (mirroring the LLVM documentation's canonical set):
///
///   PROBE_CAPABILITY(name)       This type is a lockable capability (put it
///                                on util::Mutex, not on users).
///   PROBE_SCOPED_CAPABILITY      This type is an RAII lock holder whose
///                                constructor acquires and destructor
///                                releases (util::MutexLock).
///   PROBE_GUARDED_BY(mu)        This member may only be read or written
///                                while `mu` is held.
///   PROBE_PT_GUARDED_BY(mu)     The *pointee* of this pointer member is
///                                guarded by `mu` (the pointer itself is not).
///   PROBE_REQUIRES(...)          Caller must hold the listed capabilities
///                                exclusively before calling.
///   PROBE_REQUIRES_SHARED(...)   Caller must hold them at least shared.
///   PROBE_ACQUIRE(...)           This function acquires the capability and
///                                does not release it (Mutex::Lock).
///   PROBE_ACQUIRE_SHARED(...)    Shared-mode acquire (SharedMutex::LockShared).
///   PROBE_RELEASE(...)           Releases (Mutex::Unlock).
///   PROBE_RELEASE_SHARED(...)    Shared-mode release.
///   PROBE_TRY_ACQUIRE(b, ...)    Acquires iff the function returns `b`.
///   PROBE_EXCLUDES(...)          Caller must NOT already hold these (guards
///                                against self-deadlock on non-reentrant
///                                locks).
///   PROBE_ASSERT_CAPABILITY(...) Runtime assertion that the capability is
///                                held (tells the analysis to assume it).
///   PROBE_RETURN_CAPABILITY(mu)  This function returns a reference to the
///                                capability `mu`.
///   PROBE_NO_THREAD_SAFETY_ANALYSIS
///                                Escape hatch: skip analysis of this
///                                function. Every use in this codebase must
///                                carry an adjacent comment explaining why
///                                the analysis cannot see the invariant —
///                                scripts/invariant_lint.py enforces that.
///
/// Only `src/util/mutex.h` should apply the type-level annotations; the
/// rest of the tree consumes them through util::Mutex and friends. The
/// invariant linter keeps raw std::mutex from reappearing outside the
/// wrapper, so the proof surface stays total.

#if defined(__clang__) && (!defined(SWIG))
#define PROBE_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define PROBE_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

#define PROBE_CAPABILITY(x) PROBE_THREAD_ANNOTATION_(capability(x))

#define PROBE_SCOPED_CAPABILITY PROBE_THREAD_ANNOTATION_(scoped_lockable)

#define PROBE_GUARDED_BY(x) PROBE_THREAD_ANNOTATION_(guarded_by(x))

#define PROBE_PT_GUARDED_BY(x) PROBE_THREAD_ANNOTATION_(pt_guarded_by(x))

#define PROBE_ACQUIRED_BEFORE(...) \
  PROBE_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

#define PROBE_ACQUIRED_AFTER(...) \
  PROBE_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

#define PROBE_REQUIRES(...) \
  PROBE_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

#define PROBE_REQUIRES_SHARED(...) \
  PROBE_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

#define PROBE_ACQUIRE(...) \
  PROBE_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

#define PROBE_ACQUIRE_SHARED(...) \
  PROBE_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

#define PROBE_RELEASE(...) \
  PROBE_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

#define PROBE_RELEASE_SHARED(...) \
  PROBE_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

#define PROBE_RELEASE_GENERIC(...) \
  PROBE_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

#define PROBE_TRY_ACQUIRE(...) \
  PROBE_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

#define PROBE_TRY_ACQUIRE_SHARED(...) \
  PROBE_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

#define PROBE_EXCLUDES(...) PROBE_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

#define PROBE_ASSERT_CAPABILITY(x) \
  PROBE_THREAD_ANNOTATION_(assert_capability(x))

#define PROBE_ASSERT_SHARED_CAPABILITY(x) \
  PROBE_THREAD_ANNOTATION_(assert_shared_capability(x))

#define PROBE_RETURN_CAPABILITY(x) PROBE_THREAD_ANNOTATION_(lock_returned(x))

#define PROBE_NO_THREAD_SAFETY_ANALYSIS \
  PROBE_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // PROBE_UTIL_THREAD_ANNOTATIONS_H_
