#include "util/yieldpoint.h"

#include <atomic>
#include <chrono>

#include "probe/check.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace probe::util {

namespace {

// SplitMix64: enough avalanche that adjacent seeds / visit counts give
// unrelated pause patterns.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// FNV-1a over the point name: the point's identity is its *name*, stable
// across runs, builds, and address-space layouts.
uint64_t HashName(const char* name) {
  uint64_t h = 0xCBF29CE484222325ull;
  for (const char* p = name; *p != '\0'; ++p) {
    h = (h ^ static_cast<uint8_t>(*p)) * 0x100000001B3ull;
  }
  return h;
}

constexpr uint32_t kNoOrdinal = 0xFFFFFFFFu;

thread_local uint32_t t_ordinal = kNoOrdinal;
thread_local uint64_t t_visits = 0;

}  // namespace

namespace internal {

struct ScheduleImpl {
  ScheduleOptions options;

  Mutex mu;
  CondVar cv;
  // Every passage by any thread advances the step counter; a paused thread
  // waits for it to move a hashed number of steps.
  uint64_t step PROBE_GUARDED_BY(mu) = 0;
  uint32_t waiters PROBE_GUARDED_BY(mu) = 0;
  // Arrival-order fallback for threads that never called
  // ScheduleThreadOrdinal.
  uint32_t next_auto_ordinal PROBE_GUARDED_BY(mu) = 1000;

  std::atomic<uint64_t> points{0};
  std::atomic<uint64_t> pauses{0};
  std::atomic<uint64_t> timeouts{0};
};

}  // namespace internal

namespace {

// The active harness. Installed/removed by ScheduleHarness; read by every
// SchedulePoint. acquire/release so a point that observes the pointer also
// observes the fully-constructed Impl.
std::atomic<internal::ScheduleImpl*> g_active{nullptr};

}  // namespace

ScheduleHarness::ScheduleHarness(const ScheduleOptions& options)
    : impl_(new internal::ScheduleImpl()) {
  impl_->options = options;
  internal::ScheduleImpl* expected = nullptr;
  const bool installed =
      g_active.compare_exchange_strong(expected, impl_,
                                       std::memory_order_release);
  PROBE_ASSERT(installed && "one ScheduleHarness at a time");
}

ScheduleHarness::~ScheduleHarness() {
  g_active.store(nullptr, std::memory_order_release);
  // Any thread still paused inside impl_ would dangle; the contract is
  // that callers join first, and pauses are time-bounded anyway. Grabbing
  // the mutex once ensures no pauser is mid-wakeup while we free.
  {
    MutexLock lock(&impl_->mu);
    impl_->cv.NotifyAll();
    while (impl_->waiters != 0) {
      impl_->cv.Wait(&impl_->mu);
    }
  }
  delete impl_;
}

ScheduleStats ScheduleHarness::stats() const {
  ScheduleStats s;
  s.points = impl_->points.load(std::memory_order_relaxed);
  s.pauses = impl_->pauses.load(std::memory_order_relaxed);
  s.timeouts = impl_->timeouts.load(std::memory_order_relaxed);
  return s;
}

void ScheduleThreadOrdinal(uint32_t ordinal) { t_ordinal = ordinal; }

void SchedulePoint(const char* name) {
  internal::ScheduleImpl* h = g_active.load(std::memory_order_acquire);
  if (h == nullptr) return;  // the disabled cost: one load, one branch

  const uint64_t visit = t_visits++;
  h->points.fetch_add(1, std::memory_order_relaxed);

  MutexLock lock(&h->mu);
  if (t_ordinal == kNoOrdinal) t_ordinal = h->next_auto_ordinal++;
  const ScheduleOptions& opt = h->options;
  const uint64_t hash = Mix(opt.seed ^ Mix(t_ordinal) ^ HashName(name) ^
                            Mix(visit * 0x9E3779B97F4A7C15ull));
  // Every passage is a step other pausers may be waiting on.
  ++h->step;
  if (h->waiters != 0) h->cv.NotifyAll();

  if (opt.pause_one_in == 0 || hash % opt.pause_one_in != 0) return;

  h->pauses.fetch_add(1, std::memory_order_relaxed);
  const uint64_t target =
      h->step + 1 +
      (opt.max_wait_steps == 0 ? 0 : (hash >> 32) % opt.max_wait_steps);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(opt.max_wait_micros);
  ++h->waiters;
  while (h->step < target) {
    if (h->cv.WaitUntil(&h->mu, deadline) == std::cv_status::timeout) {
      h->timeouts.fetch_add(1, std::memory_order_relaxed);
      break;
    }
  }
  --h->waiters;
  if (h->waiters == 0) h->cv.NotifyAll();  // unblock a tearing-down harness
}

}  // namespace probe::util
