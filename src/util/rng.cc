#include "util/rng.h"

#include <cmath>

namespace probe::util {

namespace {

constexpr uint64_t RotL(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = RotL(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = RotL(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Rejection sampling: draw from the largest multiple of `bound` that fits
  // in 64 bits so every residue class is equally likely.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  const uint64_t width = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(width));
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller transform on two uniforms; u1 is kept away from zero so the
  // logarithm is finite.
  double u1 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

}  // namespace probe::util
