#ifndef PROBE_UTIL_MUTEX_H_
#define PROBE_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

/// \file
/// Annotated lock primitives: the only mutexes this codebase uses.
///
/// util::Mutex and util::SharedMutex are thin wrappers over their std
/// counterparts whose sole job is to carry the Clang Thread Safety
/// Analysis capability annotations (util/thread_annotations.h). A clang
/// build with `-Wthread-safety -Werror` then rejects, at compile time, any
/// access to a PROBE_GUARDED_BY member without the lock, any double
/// acquire, and any path that leaks a lock — on *every* path, not just the
/// schedules the TSan tier happens to run.
///
/// Raw std::mutex / std::condition_variable / std::shared_mutex are banned
/// outside this header by scripts/invariant_lint.py (rule `raw-mutex`),
/// because a raw lock is invisible to the analysis: state it guards gets
/// no proof. CondVar exists for the same reason — std::condition_variable
/// wants a std::unique_lock, which would force callers back onto
/// unannotated locking; CondVar::Wait instead takes the annotated Mutex
/// the caller already holds.
///
/// Locking idioms, in the order you should reach for them:
///
///   MutexLock lock(&mu_);                 // RAII, scoped
///   if (!mu_.TryLock()) { ...; mu_.Lock(); }
///   MutexLock lock(&mu_, kAlreadyLocked);  // adopt (contention probes)
///   ReaderMutexLock lock(&rw_mu_);         // shared
///   WriterMutexLock lock(&rw_mu_);         // exclusive
///
/// Manual Lock()/Unlock() pairs are legal but the analysis makes you
/// balance them on every path, which is exactly the point.

namespace probe::util {

/// Tag for adopting a mutex the caller already locked (e.g. after a
/// TryLock-then-Lock contention probe).
struct AlreadyLockedTag {};
inline constexpr AlreadyLockedTag kAlreadyLocked{};

/// Annotated exclusive mutex.
class PROBE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PROBE_ACQUIRE() { mu_.lock(); }
  void Unlock() PROBE_RELEASE() { mu_.unlock(); }
  bool TryLock() PROBE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Annotated reader/writer mutex.
class PROBE_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() PROBE_ACQUIRE() { mu_.lock(); }
  void Unlock() PROBE_RELEASE() { mu_.unlock(); }
  void LockShared() PROBE_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() PROBE_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over a Mutex.
class PROBE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) PROBE_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }

  /// Adopts a mutex the caller locked itself (TryLock contention probe);
  /// the destructor still releases it.
  MutexLock(Mutex* mu, AlreadyLockedTag) PROBE_REQUIRES(mu) : mu_(mu) {}

  ~MutexLock() PROBE_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// RAII exclusive lock over a SharedMutex (the writer side).
class PROBE_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) PROBE_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() PROBE_RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// RAII shared lock over a SharedMutex (the reader side).
class PROBE_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) PROBE_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderMutexLock() PROBE_RELEASE() { mu_->UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// Condition variable bound to util::Mutex.
///
/// Waits are deliberately predicate-free: spell the loop out at the call
/// site (`while (!cond) cv_.Wait(&mu_);`). A predicate lambda would be
/// analyzed as a separate function without the caller's capabilities, so
/// reading guarded state inside it would (falsely) fail the clang proof —
/// the explicit loop keeps every guarded access lexically under the lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits, and reacquires it. `mu` must be held.
  void Wait(Mutex* mu) PROBE_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu->mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // the caller's scope still owns the relocked mutex
  }

  /// Wait with a deadline; returns std::cv_status::timeout when `deadline`
  /// passed before a notification. `mu` is held again either way.
  std::cv_status WaitUntil(Mutex* mu,
                           std::chrono::steady_clock::time_point deadline)
      PROBE_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu->mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lk, deadline);
    lk.release();
    return status;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace probe::util

#endif  // PROBE_UTIL_MUTEX_H_
