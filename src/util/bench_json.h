#ifndef PROBE_UTIL_BENCH_JSON_H_
#define PROBE_UTIL_BENCH_JSON_H_

#include <string>
#include <string_view>

/// \file
/// Machine-readable bench output.
///
/// Benches that track a perf trajectory across PRs write their numbers to
/// a JSON file next to the human-readable tables. Several benches share
/// one file (e.g. BENCH_parallel.json), each owning a top-level section;
/// UpdateJsonSection replaces just that section so the benches can run in
/// any order — or individually — without clobbering each other.

namespace probe::util {

/// Rewrites `path` so that it is a JSON object whose `section` key maps to
/// `payload` (itself a JSON value, serialized by the caller). Other
/// top-level sections already in the file are preserved. The file is
/// created if missing; unparseable content is discarded. Returns false if
/// the file could not be written.
bool UpdateJsonSection(const std::string& path, const std::string& section,
                       const std::string& payload);

/// `text` escaped for embedding inside a JSON string literal (quotes,
/// backslashes, control characters). Benches that serialize free-form
/// strings — operator names, EXPLAIN details — go through this instead of
/// trusting the text.
std::string JsonEscape(std::string_view text);

}  // namespace probe::util

#endif  // PROBE_UTIL_BENCH_JSON_H_
