#ifndef PROBE_UTIL_BENCH_JSON_H_
#define PROBE_UTIL_BENCH_JSON_H_

#include <string>

/// \file
/// Machine-readable bench output.
///
/// Benches that track a perf trajectory across PRs write their numbers to
/// a JSON file next to the human-readable tables. Several benches share
/// one file (e.g. BENCH_parallel.json), each owning a top-level section;
/// UpdateJsonSection replaces just that section so the benches can run in
/// any order — or individually — without clobbering each other.

namespace probe::util {

/// Rewrites `path` so that it is a JSON object whose `section` key maps to
/// `payload` (itself a JSON value, serialized by the caller). Other
/// top-level sections already in the file are preserved. The file is
/// created if missing; unparseable content is discarded. Returns false if
/// the file could not be written.
bool UpdateJsonSection(const std::string& path, const std::string& section,
                       const std::string& payload);

}  // namespace probe::util

#endif  // PROBE_UTIL_BENCH_JSON_H_
