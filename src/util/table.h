#ifndef PROBE_UTIL_TABLE_H_
#define PROBE_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

/// \file
/// Plain-text table rendering for the bench binaries.
///
/// Every experiment bench prints the rows/series the paper reports; this
/// renderer keeps that output aligned and diff-friendly.

namespace probe::util {

/// Column-aligned text table. Cells are strings; numeric helpers format with
/// a fixed precision so repeated runs diff cleanly.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row. Subsequent Cell() calls fill it left to right.
  void AddRow();

  /// Appends a string cell to the current row.
  void Cell(const std::string& value);

  /// Appends an integer cell.
  void Cell(int64_t value);

  /// Appends a floating-point cell with `precision` digits after the point.
  void Cell(double value, int precision = 3);

  /// Renders the table with a header rule to `out`.
  void Print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace probe::util

#endif  // PROBE_UTIL_TABLE_H_
