#ifndef PROBE_UTIL_CRC32_H_
#define PROBE_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

/// \file
/// CRC-32 (IEEE 802.3 polynomial, reflected) for on-disk integrity checks.
///
/// The write-ahead log stamps every record with a checksum so recovery can
/// tell a complete record from a torn or corrupted tail. A table-driven
/// software CRC is plenty: log appends are dominated by the page-image
/// memcpy and the eventual fsync, not the checksum.

namespace probe::util {

/// CRC-32 of `data[0, size)`, continuing from `seed` (pass 0 to start).
/// Chain calls to checksum discontiguous spans as one logical stream.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace probe::util

#endif  // PROBE_UTIL_CRC32_H_
