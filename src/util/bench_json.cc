#include "util/bench_json.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

namespace probe::util {

namespace {

// Splits the top level of a JSON object into (key, raw value) pairs.
// Handles nesting and strings; returns false on anything malformed.
bool ParseTopLevel(const std::string& text,
                   std::vector<std::pair<std::string, std::string>>* out) {
  size_t i = 0;
  auto skip_ws = [&]() {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
  };
  skip_ws();
  if (i >= text.size() || text[i] != '{') return false;
  ++i;
  for (;;) {
    skip_ws();
    if (i < text.size() && text[i] == '}') return true;
    // Key.
    if (i >= text.size() || text[i] != '"') return false;
    ++i;
    std::string key;
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\') ++i;
      if (i < text.size()) key.push_back(text[i++]);
    }
    if (i >= text.size()) return false;
    ++i;  // closing quote
    skip_ws();
    if (i >= text.size() || text[i] != ':') return false;
    ++i;
    skip_ws();
    // Value: scan to the matching top-level ',' or '}'.
    const size_t value_begin = i;
    int depth = 0;
    bool in_string = false;
    while (i < text.size()) {
      const char c = text[i];
      if (in_string) {
        if (c == '\\') ++i;
        else if (c == '"') in_string = false;
      } else if (c == '"') {
        in_string = true;
      } else if (c == '{' || c == '[') {
        ++depth;
      } else if (c == '}' || c == ']') {
        if (depth == 0) break;  // the object's closing '}'
        --depth;
      } else if (c == ',' && depth == 0) {
        break;
      }
      ++i;
    }
    if (i >= text.size()) return false;
    std::string value = text.substr(value_begin, i - value_begin);
    while (!value.empty() &&
           std::isspace(static_cast<unsigned char>(value.back()))) {
      value.pop_back();
    }
    out->emplace_back(std::move(key), std::move(value));
    if (text[i] == ',') ++i;
  }
}

}  // namespace

bool UpdateJsonSection(const std::string& path, const std::string& section,
                       const std::string& payload) {
  std::vector<std::pair<std::string, std::string>> sections;
  {
    std::ifstream in(path);
    if (in) {
      std::stringstream buffer;
      buffer << in.rdbuf();
      std::vector<std::pair<std::string, std::string>> parsed;
      if (ParseTopLevel(buffer.str(), &parsed)) sections = std::move(parsed);
    }
  }
  bool replaced = false;
  for (auto& [key, value] : sections) {
    if (key == section) {
      value = payload;
      replaced = true;
    }
  }
  if (!replaced) sections.emplace_back(section, payload);

  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "{\n";
  for (size_t k = 0; k < sections.size(); ++k) {
    out << "  \"" << sections[k].first << "\": " << sections[k].second;
    if (k + 1 < sections.size()) out << ",";
    out << "\n";
  }
  out << "}\n";
  return out.good();
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace probe::util
