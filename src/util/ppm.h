#ifndef PROBE_UTIL_PPM_H_
#define PROBE_UTIL_PPM_H_

#include <cstdint>
#include <string>
#include <vector>

/// \file
/// Minimal binary PPM (P6) image writer.
///
/// The paper's Figure 6 is a plotter drawing of the page partitioning;
/// the fig6 bench renders the same maps both as ASCII and as PPM files so
/// the reproduction ships inspectable image artifacts with zero image
/// dependencies.

namespace probe::util {

/// An RGB image with Cartesian addressing (origin at bottom-left, matching
/// the paper's figures).
class PpmImage {
 public:
  PpmImage(int width, int height);

  int width() const { return width_; }
  int height() const { return height_; }

  /// Sets the pixel at Cartesian (x, y); (0, 0) is bottom-left.
  void Set(int x, int y, uint8_t r, uint8_t g, uint8_t b);

  /// Fills the whole image with one color.
  void Fill(uint8_t r, uint8_t g, uint8_t b);

  /// Writes binary P6 to `path`; false on I/O failure.
  bool WriteTo(const std::string& path) const;

 private:
  int width_;
  int height_;
  std::vector<uint8_t> pixels_;  // row-major from the top row
};

/// A deterministic categorical color (for labelling partitions/components):
/// index -> visually spread RGB via a golden-ratio hue walk.
void CategoricalColor(uint64_t index, uint8_t* r, uint8_t* g, uint8_t* b);

}  // namespace probe::util

#endif  // PROBE_UTIL_PPM_H_
