#include "btree/btree.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "btree/audit.h"
#include "btree/simd_filter.h"
#include "probe/check.h"

namespace probe::btree {

namespace {

using storage::PageId;
using storage::PageRef;

uint8_t KindOf(const storage::Page& page) {
  return page.Read<uint8_t>(kKindOffset);
}

/// Decodes every entry of either leaf layout into `out`.
void DecodeLeafAny(storage::Page& page, std::vector<LeafEntry>* out) {
  if (KindOf(page) == kLeafV2Kind) {
    V2Decode(page, out);
    return;
  }
  LeafView leaf(&page);
  const int n = leaf.count();
  out->clear();
  out->reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) out->push_back(leaf.Get(i));
}

/// Picks a split index in [1, n-1] whose halves both satisfy the v2
/// worst-case byte budget, preferring a distinct-key boundary nearest
/// `preferred` (so prefix separators stay strict where possible) and
/// falling back to any feasible index. Returns -1 when no split fits —
/// possible only for rebalancing unions of two near-worst-full pages,
/// never for an overflowing single page (the half left of the largest
/// feasible left edge leaves at most one entry's worth on the right).
int PickV2Split(const std::vector<LeafEntry>& entries, int preferred,
                int max_count) {
  const int n = static_cast<int>(entries.size());
  std::vector<size_t> worst(static_cast<size_t>(n) + 1, 0);
  for (int i = 0; i < n; ++i) {
    worst[i + 1] = worst[i] + V2EntryWorstSize(entries[i]);
  }
  auto fits_at = [&](int j) {
    return j >= 1 && j <= n - 1 && j <= max_count && n - j <= max_count &&
           kV2EntriesOffset + worst[j] <= storage::Page::kSize &&
           kV2EntriesOffset + (worst[n] - worst[j]) <= storage::Page::kSize;
  };
  auto distinct_at = [&](int j) {
    return j >= 1 && j <= n - 1 && entries[j - 1].key < entries[j].key;
  };
  if (distinct_at(preferred) && fits_at(preferred)) return preferred;
  for (int delta = 1; delta < n; ++delta) {
    if (distinct_at(preferred - delta) && fits_at(preferred - delta)) {
      return preferred - delta;
    }
    if (distinct_at(preferred + delta) && fits_at(preferred + delta)) {
      return preferred + delta;
    }
  }
  // All-duplicate page (or no distinct boundary fits): take any split
  // within budget.
  if (fits_at(preferred)) return preferred;
  for (int delta = 1; delta < n; ++delta) {
    if (fits_at(preferred - delta)) return preferred - delta;
    if (fits_at(preferred + delta)) return preferred + delta;
  }
  return -1;
}

}  // namespace

BTree::BTree(storage::BufferPool* pool, const BTreeConfig& config)
    : pool_(pool), config_(config), height_(1) {
  const int leaf_max = config_.leaf_format == LeafFormat::kV2
                           ? kV2MaxEntries - 1
                           : LeafView::kMaxCapacity - 1;
  (void)leaf_max;
  assert(config_.leaf_capacity >= 2 && config_.leaf_capacity <= leaf_max);
  assert(config_.internal_capacity >= 2 &&
         config_.internal_capacity <= InternalView::kMaxCapacity - 1);
  PageRef ref = pool_->New(&root_);
  if (config_.leaf_format == LeafFormat::kV2) {
    V2Encode(&ref.page(), {}, storage::kInvalidPageId);
  } else {
    LeafView leaf(&ref.page());
    leaf.Init();
  }
  ref.MarkDirty();
}

void BTree::Insert(const ZKey& key, uint64_t payload) {
  SplitResult result;
  InsertRec(root_, key, payload, &result);
  if (result.split) {
    PageId new_root_id;
    PageRef ref = pool_->New(&new_root_id);
    InternalView node(&ref.page());
    node.Init(root_);
    node.InsertPairAt(0, result.separator, result.new_page);
    ref.MarkDirty();
    root_ = new_root_id;
    ++height_;
  }
  ++size_;
}

void BTree::InsertRec(PageId page_id, const ZKey& key, uint64_t payload,
                      SplitResult* result) {
  result->split = false;
  PageRef ref = pool_->Fetch(page_id);
  const uint8_t kind = KindOf(ref.page());
  if (kind == kLeafV2Kind) {
    InsertLeafV2(ref, key, payload, result);
    return;
  }
  if (kind == kLeafKind) {
    LeafView leaf(&ref.page());
    // Lower bound by key, then order duplicates by payload so the layout
    // is independent of insertion order.
    int idx = leaf.LowerBound(key);
    while (idx < leaf.count() && leaf.Get(idx).key == key &&
           leaf.Get(idx).payload < payload) {
      ++idx;
    }
    leaf.InsertAt(idx, LeafEntry{key, payload});
    ref.MarkDirty();
    if (leaf.count() <= V1LeafCap()) {
      PROBE_AUDIT(AuditLeafPage(leaf, 1, V1LeafCap()));
      return;
    }

    // Overflow: split. Prefer a split point that does not divide a run of
    // equal keys, so prefix separators stay strict where possible.
    const int n = leaf.count();
    int split = n / 2;
    auto distinct_at = [&](int j) {
      return j > 0 && j < n && leaf.Get(j - 1).key < leaf.Get(j).key;
    };
    if (!distinct_at(split)) {
      for (int delta = 1; delta < n; ++delta) {
        if (distinct_at(split - delta)) {
          split -= delta;
          break;
        }
        if (distinct_at(split + delta)) {
          split += delta;
          break;
        }
      }
    }
    PageId right_id;
    PageRef right_ref = pool_->New(&right_id);
    LeafView right(&right_ref.page());
    right.Init();
    for (int i = split; i < n; ++i) {
      right.Set(i - split, leaf.Get(i));
    }
    right.set_count(n - split);
    leaf.set_count(split);
    right.set_next_leaf(leaf.next_leaf());
    leaf.set_next_leaf(right_id);
    right_ref.MarkDirty();
    result->split = true;
    result->separator =
        PrefixSeparator(leaf.Get(split - 1).key, right.Get(0).key);
    result->new_page = right_id;
    // Both halves of a split must hold sorted keys and at least one entry.
    PROBE_AUDIT(AuditLeafPage(leaf, 1, V1LeafCap()));
    PROBE_AUDIT(AuditLeafPage(right, 1, V1LeafCap()));
    return;
  }

  InternalView node(&ref.page());
  const int child_idx = node.DescendRight(key);
  SplitResult child_result;
  InsertRec(node.ChildAt(child_idx), key, payload, &child_result);
  if (!child_result.split) return;

  node.InsertPairAt(child_idx, child_result.separator, child_result.new_page);
  ref.MarkDirty();
  if (node.count() <= config_.internal_capacity) {
    PROBE_AUDIT(AuditInternalPage(node, 1, config_.internal_capacity));
    return;
  }

  // Split the internal node: the middle separator moves up.
  const int n = node.count();
  const int mid = n / 2;
  PageId right_id;
  PageRef right_ref = pool_->New(&right_id);
  InternalView right(&right_ref.page());
  right.Init(node.ChildAt(mid + 1));
  for (int i = mid + 1; i < n; ++i) {
    right.InsertPairAt(i - mid - 1, node.SeparatorAt(i), node.ChildAt(i + 1));
  }
  result->split = true;
  result->separator = node.SeparatorAt(mid);
  result->new_page = right_id;
  node.set_count(mid);
  right_ref.MarkDirty();
  PROBE_AUDIT(AuditInternalPage(node, 1, config_.internal_capacity));
  PROBE_AUDIT(AuditInternalPage(right, 1, config_.internal_capacity));
}

void BTree::InsertLeafV2(PageRef& ref, const ZKey& key, uint64_t payload,
                         SplitResult* result) {
  // v2 pages mutate by decode -> edit -> re-encode; admission is the
  // worst-case byte budget plus the configured count cap.
  std::vector<LeafEntry> entries;
  V2Decode(ref.page(), &entries);
  auto it = std::lower_bound(
      entries.begin(), entries.end(), key,
      [](const LeafEntry& e, const ZKey& k) { return e.key < k; });
  // Order duplicates by payload so the layout is insertion-independent.
  while (it != entries.end() && it->key == key && it->payload < payload) ++it;
  entries.insert(it, LeafEntry{key, payload});
  const PageId next = ref.page().Read<PageId>(kNextLeafOffset);

  const int cap = V2LeafCap();
  if (static_cast<int>(entries.size()) <= cap && V2Admits(entries)) {
    V2Encode(&ref.page(), entries, next);
    ref.MarkDirty();
    PROBE_AUDIT(AuditLeafV2Page(ref.page(), 1, cap));
    return;
  }

  const int n = static_cast<int>(entries.size());
  const int split = PickV2Split(entries, n / 2, cap);
  PROBE_ASSERT_MSG(split > 0, "v2 leaf split infeasible");
  PageId right_id;
  PageRef right_ref = pool_->New(&right_id);
  const std::span<const LeafEntry> all(entries);
  V2Encode(&right_ref.page(), all.subspan(static_cast<size_t>(split)), next);
  V2Encode(&ref.page(), all.first(static_cast<size_t>(split)), right_id);
  ref.MarkDirty();
  right_ref.MarkDirty();
  result->split = true;
  result->separator =
      PrefixSeparator(entries[split - 1].key, entries[split].key);
  result->new_page = right_id;
  PROBE_AUDIT(AuditLeafV2Page(ref.page(), 1, cap));
  PROBE_AUDIT(AuditLeafV2Page(right_ref.page(), 1, cap));
}

bool BTree::Delete(const ZKey& key, uint64_t payload) {
  bool underflow = false;
  if (!DeleteRec(root_, key, payload, &underflow)) return false;
  --size_;
  // Shrink the root when an internal root lost its last separator.
  for (;;) {
    PageRef ref = pool_->Fetch(root_);
    if (IsLeafKind(KindOf(ref.page()))) break;
    InternalView node(&ref.page());
    if (node.count() > 0) break;
    const PageId only_child = node.child0();
    ref.Release();
    root_ = only_child;
    --height_;
  }
  return true;
}

bool BTree::DeleteRec(PageId page_id, const ZKey& key, uint64_t payload,
                      bool* underflow) {
  *underflow = false;
  PageRef ref = pool_->Fetch(page_id);
  const uint8_t kind = KindOf(ref.page());
  if (kind == kLeafV2Kind) {
    std::vector<LeafEntry> entries;
    V2Decode(ref.page(), &entries);
    auto it = std::lower_bound(
        entries.begin(), entries.end(), key,
        [](const LeafEntry& e, const ZKey& k) { return e.key < k; });
    for (; it != entries.end() && it->key == key; ++it) {
      if (it->payload == payload) {
        const PageId next = ref.page().Read<PageId>(kNextLeafOffset);
        entries.erase(it);
        const size_t used = V2Encode(&ref.page(), entries, next);
        ref.MarkDirty();
        // v2 occupancy is byte-driven, so underflow is too: rebalance
        // when the page falls under a quarter of its byte budget.
        *underflow = page_id != root_ && used < storage::Page::kSize / 4;
        PROBE_AUDIT(AuditLeafV2Page(ref.page(), 0, V2LeafCap()));
        return true;
      }
    }
    return false;
  }
  if (kind == kLeafKind) {
    LeafView leaf(&ref.page());
    for (int i = leaf.LowerBound(key);
         i < leaf.count() && leaf.Get(i).key == key; ++i) {
      if (leaf.Get(i).payload == payload) {
        leaf.RemoveAt(i);
        ref.MarkDirty();
        *underflow = page_id != root_ && leaf.count() < MinLeafCount();
        // Order must survive removal; occupancy is the parent's problem
        // (it rebalances on *underflow).
        PROBE_AUDIT(AuditLeafPage(leaf, 0, V1LeafCap()));
        return true;
      }
    }
    return false;
  }

  InternalView node(&ref.page());
  // Equal keys may straddle a separator equal to the key, so every child
  // between the left and right descent positions is a candidate.
  const int lo = node.DescendLeft(key);
  const int hi = node.DescendRight(key);
  for (int child_idx = lo; child_idx <= hi; ++child_idx) {
    bool child_underflow = false;
    if (DeleteRec(node.ChildAt(child_idx), key, payload, &child_underflow)) {
      if (child_underflow) {
        FixUnderflow(node, child_idx);
        ref.MarkDirty();
        *underflow = page_id != root_ && node.count() < MinInternalCount();
        PROBE_AUDIT(AuditInternalPage(node, 0, config_.internal_capacity));
      }
      return true;
    }
  }
  return false;
}

void BTree::FixUnderflow(InternalView& parent, int child_idx) {
  // Prefer borrowing from a sibling; merge when both are at minimum.
  const PageId child_id = parent.ChildAt(child_idx);
  PageRef child_ref = pool_->Fetch(child_id);
  const bool child_is_leaf = IsLeafKind(KindOf(child_ref.page()));

  // A v2 page anywhere among the rebalancing candidates routes to the
  // decode/re-encode path (the in-place moves below assume v1 layout).
  if (child_is_leaf) {
    bool any_v2 = KindOf(child_ref.page()) == kLeafV2Kind;
    for (int dir = -1; dir <= 1 && !any_v2; dir += 2) {
      const int sib_idx = child_idx + dir;
      if (sib_idx < 0 || sib_idx > parent.count()) continue;
      PageRef sib_ref = pool_->Fetch(parent.ChildAt(sib_idx));
      any_v2 = KindOf(sib_ref.page()) == kLeafV2Kind;
    }
    if (any_v2) {
      child_ref.Release();
      FixLeafUnderflowV2(parent, child_idx);
      return;
    }
  }

  auto leaf_count = [&](PageRef& r) { return LeafView(&r.page()).count(); };
  auto internal_count = [&](PageRef& r) {
    return InternalView(&r.page()).count();
  };

  // Try left sibling first, then right.
  for (int dir = -1; dir <= 1; dir += 2) {
    const int sib_idx = child_idx + dir;
    if (sib_idx < 0 || sib_idx > parent.count()) continue;
    PageRef sib_ref = pool_->Fetch(parent.ChildAt(sib_idx));
    const int sib_count = child_is_leaf ? leaf_count(sib_ref)
                                        : internal_count(sib_ref);
    const int min_count = child_is_leaf ? MinLeafCount() : MinInternalCount();
    if (sib_count <= min_count) continue;

    // Borrow one entry/pair across the parent separator.
    const int sep_idx = dir < 0 ? child_idx - 1 : child_idx;
    if (child_is_leaf) {
      LeafView child(&child_ref.page());
      LeafView sib(&sib_ref.page());
      if (dir < 0) {
        const LeafEntry moved = sib.Get(sib.count() - 1);
        sib.RemoveAt(sib.count() - 1);
        child.InsertAt(0, moved);
        parent.SetSeparator(
            sep_idx, PrefixSeparator(sib.Get(sib.count() - 1).key, moved.key));
      } else {
        const LeafEntry moved = sib.Get(0);
        sib.RemoveAt(0);
        child.InsertAt(child.count(), moved);
        parent.SetSeparator(sep_idx,
                            PrefixSeparator(moved.key, sib.Get(0).key));
      }
    } else {
      InternalView child(&child_ref.page());
      InternalView sib(&sib_ref.page());
      const ZKey parent_sep = parent.SeparatorAt(sep_idx);
      if (dir < 0) {
        // Rotate right: sibling's last child becomes child's new child0.
        const int last = sib.count() - 1;
        const ZKey up = sib.SeparatorAt(last);
        const PageId moved_child = sib.ChildAt(last + 1);
        sib.RemovePairAt(last);
        child.InsertPairAt(0, parent_sep, child.child0());
        child.set_child0(moved_child);
        parent.SetSeparator(sep_idx, up);
      } else {
        // Rotate left: sibling's child0 appends to child.
        const ZKey up = sib.SeparatorAt(0);
        const PageId moved_child = sib.child0();
        child.InsertPairAt(child.count(), parent_sep, moved_child);
        sib.set_child0(sib.ChildAt(1));
        sib.RemovePairAt(0);
        parent.SetSeparator(sep_idx, up);
      }
    }
    child_ref.MarkDirty();
    sib_ref.MarkDirty();
    return;
  }

  // Merge with a sibling (left if it exists, else right). After merging,
  // the separated pair disappears from the parent.
  const int left_idx = child_idx > 0 ? child_idx - 1 : child_idx;
  const int right_idx = left_idx + 1;
  assert(right_idx <= parent.count());
  PageRef left_ref = pool_->Fetch(parent.ChildAt(left_idx));
  PageRef right_ref = pool_->Fetch(parent.ChildAt(right_idx));
  if (child_is_leaf) {
    LeafView left(&left_ref.page());
    LeafView right(&right_ref.page());
    const int base = left.count();
    for (int i = 0; i < right.count(); ++i) left.Set(base + i, right.Get(i));
    left.set_count(base + right.count());
    left.set_next_leaf(right.next_leaf());
  } else {
    InternalView left(&left_ref.page());
    InternalView right(&right_ref.page());
    const ZKey parent_sep = parent.SeparatorAt(left_idx);
    left.InsertPairAt(left.count(), parent_sep, right.child0());
    const int moved = right.count();
    for (int i = 0; i < moved; ++i) {
      left.InsertPairAt(left.count(), right.SeparatorAt(i),
                        right.ChildAt(i + 1));
    }
  }
  left_ref.MarkDirty();
  parent.RemovePairAt(left_idx);
  // The right page is no longer referenced; the simulated disk has no free
  // list, so it is simply abandoned.
}

void BTree::FixLeafUnderflowV2(InternalView& parent, int child_idx) {
  // Merge-or-redistribute with the left neighbor when one exists, else
  // the right; redistribution generalizes v1's one-entry borrow. The
  // merged result is re-encoded as v2 (readers dispatch per page, so a
  // v1 partner flipping to v2 is fine).
  const int left_idx = child_idx > 0 ? child_idx - 1 : child_idx;
  const int right_idx = left_idx + 1;
  assert(right_idx <= parent.count());
  PageRef left_ref = pool_->Fetch(parent.ChildAt(left_idx));
  PageRef right_ref = pool_->Fetch(parent.ChildAt(right_idx));
  std::vector<LeafEntry> combined;
  std::vector<LeafEntry> right_entries;
  DecodeLeafAny(left_ref.page(), &combined);
  DecodeLeafAny(right_ref.page(), &right_entries);
  combined.insert(combined.end(), right_entries.begin(), right_entries.end());
  const PageId tail = right_ref.page().Read<PageId>(kNextLeafOffset);

  const int cap = V2LeafCap();
  if (static_cast<int>(combined.size()) <= cap && V2Admits(combined)) {
    V2Encode(&left_ref.page(), combined, tail);
    left_ref.MarkDirty();
    parent.RemovePairAt(left_idx);
    PROBE_AUDIT(AuditLeafV2Page(left_ref.page(), 1, cap));
    // The right page is abandoned, as in the v1 merge.
    return;
  }

  const int split =
      PickV2Split(combined, static_cast<int>(combined.size()) / 2, cap);
  if (split <= 0) return;  // no feasible balance point: tolerate underflow
  const std::span<const LeafEntry> all(combined);
  V2Encode(&right_ref.page(), all.subspan(static_cast<size_t>(split)), tail);
  V2Encode(&left_ref.page(), all.first(static_cast<size_t>(split)),
           parent.ChildAt(right_idx));
  left_ref.MarkDirty();
  right_ref.MarkDirty();
  parent.SetSeparator(
      left_idx, PrefixSeparator(combined[split - 1].key, combined[split].key));
  PROBE_AUDIT(AuditLeafV2Page(left_ref.page(), 1, cap));
  PROBE_AUDIT(AuditLeafV2Page(right_ref.page(), 1, cap));
}

BTree::Cursor::Cursor(const BTree* tree) : tree_(tree) {}

bool BTree::Cursor::SeekFirst() {
  return Seek(ZKey{0, 0});
}

bool BTree::Cursor::Seek(const ZKey& key) {
  PageId page_id = tree_->root_;
  PageRef ref = tree_->pool_->Fetch(page_id);
  while (!IsLeafKind(KindOf(ref.page()))) {
    ++internal_loads_;
    InternalView node(&ref.page());
    page_id = node.ChildAt(node.DescendLeft(key));
    ref = tree_->pool_->Fetch(page_id);
  }
  // Re-landing on the leaf the cursor already sits on is not a new page
  // access: the page is resident (the LRU argument of Section 4), so the
  // paper's "data pages accessed" metric counts it once. The decoded
  // cache survives for the same reason.
  if (!(valid_ && page_id == leaf_page_)) {
    ++leaf_loads_;
    leaf_entries_seen_ +=
        static_cast<uint64_t>(ref.page().Read<uint16_t>(kCountOffset));
    cache_valid_ = false;
  }
  leaf_ref_ = std::move(ref);
  leaf_page_ = page_id;
  EnsureCache();
  index_ = static_cast<int>(
      std::lower_bound(
          cache_entries_.begin(), cache_entries_.end(), key,
          [](const LeafEntry& e, const ZKey& k) { return e.key < k; }) -
      cache_entries_.begin());
  while (index_ >= static_cast<int>(cache_entries_.size())) {
    if (!AdvanceLeaf()) return false;
    EnsureCache();
  }
  valid_ = true;
  current_ = cache_entries_[static_cast<size_t>(index_)];
  return true;
}

bool BTree::Cursor::Next() {
  assert(valid_);
  return Advance(1);
}

bool BTree::Cursor::Advance(int k) {
  assert(valid_);
  assert(k >= 0);
  index_ += k;
  while (index_ >= LeafCountHeader()) {
    if (!AdvanceLeaf()) return false;
  }
  EnsureCache();
  current_ = cache_entries_[static_cast<size_t>(index_)];
  return true;
}

int BTree::Cursor::RunLengthLE(uint64_t bound) {
  assert(valid_);
  EnsureCache();
  return UpperBoundZ(cache_z_.data() + index_,
                     static_cast<int>(cache_z_.size()) - index_, bound);
}

uint64_t BTree::Cursor::PeekZ(int k) {
  EnsureCache();
  assert(index_ + k < static_cast<int>(cache_z_.size()));
  return cache_z_[static_cast<size_t>(index_ + k)];
}

const LeafEntry& BTree::Cursor::PeekEntry(int k) {
  EnsureCache();
  assert(index_ + k < static_cast<int>(cache_entries_.size()));
  return cache_entries_[static_cast<size_t>(index_ + k)];
}

uint64_t BTree::Cursor::CountWhileLE(uint64_t bound) {
  assert(valid_);
  uint64_t total = 0;
  for (;;) {
    const int count = LeafCountHeader();
    if (index_ == 0 && count > 0 && LeafLastZ() <= bound) {
      // The whole leaf qualifies: take the header count and move on
      // without decoding a single entry — the aggregate pushdown's
      // interior-leaf fast path.
      total += static_cast<uint64_t>(count);
      if (!AdvanceLeaf()) return total;
      continue;
    }
    const int run = RunLengthLE(bound);
    total += static_cast<uint64_t>(run);
    index_ += run;
    if (index_ < count) {
      current_ = cache_entries_[static_cast<size_t>(index_)];
      return total;
    }
    if (!AdvanceLeaf()) return total;
  }
}

bool BTree::Cursor::AdvanceLeaf() {
  const PageId next = leaf_ref_.page().Read<PageId>(kNextLeafOffset);
  if (next == storage::kInvalidPageId) {
    valid_ = false;
    cache_valid_ = false;
    leaf_ref_.Release();
    return false;
  }
  leaf_ref_ = tree_->pool_->Fetch(next);
  leaf_page_ = next;
  ++leaf_loads_;
  leaf_entries_seen_ +=
      static_cast<uint64_t>(leaf_ref_.page().Read<uint16_t>(kCountOffset));
  cache_valid_ = false;
  index_ = 0;
  return true;
}

void BTree::Cursor::EnsureCache() {
  if (cache_valid_) return;
  storage::Page& page = leaf_ref_.page();
  if (KindOf(page) == kLeafV2Kind) {
    V2Decode(page, &cache_entries_);
  } else {
    LeafView leaf(&page);
    const int n = leaf.count();
    cache_entries_.clear();
    cache_entries_.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) cache_entries_.push_back(leaf.Get(i));
  }
  cache_z_.resize(cache_entries_.size());
  for (size_t i = 0; i < cache_entries_.size(); ++i) {
    cache_z_[i] = cache_entries_[i].key.ToZValue().ToInteger();
  }
  cache_valid_ = true;
}

int BTree::Cursor::LeafCountHeader() {
  return leaf_ref_.page().Read<uint16_t>(kCountOffset);
}

uint64_t BTree::Cursor::LeafLastZ() {
  storage::Page& page = leaf_ref_.page();
  if (KindOf(page) == kLeafV2Kind) {
    return V2LastKey(page).ToZValue().ToInteger();
  }
  LeafView leaf(&page);
  return leaf.Get(leaf.count() - 1).key.ToZValue().ToInteger();
}

std::vector<BTree::LeafSummary> BTree::LeafSequence() {
  // Descend to the leftmost leaf, then follow the chain.
  PageId page_id = root_;
  PageRef ref = pool_->Fetch(page_id);
  while (!IsLeafKind(KindOf(ref.page()))) {
    page_id = InternalView(&ref.page()).child0();
    ref = pool_->Fetch(page_id);
  }
  std::vector<LeafSummary> leaves;
  for (;;) {
    storage::Page& page = ref.page();
    const int count = page.Read<uint16_t>(kCountOffset);
    LeafSummary summary;
    summary.entries = count;
    if (count > 0) {
      summary.first_key = KindOf(page) == kLeafV2Kind
                              ? V2FirstKey(page)
                              : LeafView(&page).Get(0).key;
    } else {
      summary.first_key = ZKey{0, 0};
    }
    leaves.push_back(summary);
    const PageId next = page.Read<PageId>(kNextLeafOffset);
    if (next == storage::kInvalidPageId) break;
    ref = pool_->Fetch(next);
  }
  return leaves;
}

BTreeShape BTree::ComputeShape() {
  BTreeShape shape;
  shape.height = height_;
  std::vector<PageId> level = {root_};
  for (int depth = 0; depth < height_; ++depth) {
    std::vector<PageId> next_level;
    for (PageId id : level) {
      PageRef ref = pool_->Fetch(id);
      if (IsLeafKind(KindOf(ref.page()))) {
        ++shape.leaf_pages;
        shape.entries += static_cast<uint64_t>(
            ref.page().Read<uint16_t>(kCountOffset));
      } else {
        ++shape.internal_pages;
        InternalView node(&ref.page());
        for (int i = 0; i <= node.count(); ++i) {
          next_level.push_back(node.ChildAt(i));
        }
      }
    }
    level = std::move(next_level);
  }
  return shape;
}

bool BTree::CheckInvariants() {
  // Walk the leaf chain: keys must be globally non-decreasing, and the
  // number of entries must match size_.
  uint64_t seen = 0;
  Cursor cursor(this);
  ZKey prev{0, 0};
  bool first = true;
  if (cursor.SeekFirst()) {
    do {
      const ZKey k = cursor.entry().key;
      if (!first && k < prev) return false;
      prev = k;
      first = false;
      ++seen;
    } while (cursor.Next());
  }
  if (seen != size_) return false;

  // Structural walk: uniform depth and separator routing.
  struct Frame {
    PageId id;
    int depth;
    ZKey lo;       // inclusive lower bound on keys in this subtree
    bool has_hi;   // whether hi applies
    ZKey hi;       // inclusive upper bound (duplicates may touch it)
  };
  std::vector<Frame> stack = {{root_, 1, ZKey{0, 0}, false, ZKey{0, 0}}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    PageRef ref = pool_->Fetch(frame.id);
    if (IsLeafKind(KindOf(ref.page()))) {
      if (frame.depth != height_) return false;
      std::vector<LeafEntry> entries;
      DecodeLeafAny(ref.page(), &entries);
      // Leaves are normally >= half full, but a split that refuses to
      // divide a run of duplicate keys may move its split point off
      // center, so only emptiness is a hard violation here.
      if (frame.id != root_ && entries.empty()) return false;
      for (size_t i = 0; i < entries.size(); ++i) {
        const ZKey k = entries[i].key;
        if (k < frame.lo) return false;
        if (frame.has_hi && frame.hi < k) return false;
        if (i > 0 && k < entries[i - 1].key) return false;
      }
      continue;
    }
    InternalView node(&ref.page());
    // Rightmost bulk-loaded internal nodes may be arbitrarily light, so
    // occupancy below the rebalancing minimum is not a violation; an
    // internal node without separators is (except a leaf-only tree).
    if (node.count() < 1) return false;
    for (int i = 0; i < node.count(); ++i) {
      if (i > 0 && node.SeparatorAt(i) < node.SeparatorAt(i - 1)) return false;
    }
    for (int i = 0; i <= node.count(); ++i) {
      Frame child;
      child.id = node.ChildAt(i);
      child.depth = frame.depth + 1;
      child.lo = i == 0 ? frame.lo : node.SeparatorAt(i - 1);
      if (i < node.count()) {
        child.has_hi = true;
        child.hi = node.SeparatorAt(i);
      } else {
        child.has_hi = frame.has_hi;
        child.hi = frame.hi;
      }
      stack.push_back(child);
    }
  }
  return true;
}

void BTree::PersistentState::EncodeTo(uint8_t* out) const {
  const uint32_t r = root;
  const int32_t h = height;
  const uint64_t s = size;
  std::memcpy(out, &r, 4);
  std::memcpy(out + 4, &h, 4);
  std::memcpy(out + 8, &s, 8);
}

BTree::PersistentState BTree::PersistentState::Decode(const uint8_t* bytes) {
  PersistentState state;
  uint32_t r;
  int32_t h;
  uint64_t s;
  std::memcpy(&r, bytes, 4);
  std::memcpy(&h, bytes + 4, 4);
  std::memcpy(&s, bytes + 8, 8);
  state.root = r;
  state.height = h;
  state.size = s;
  return state;
}

BTree BTree::Attach(storage::BufferPool* pool, const PersistentState& state,
                    const BTreeConfig& config) {
  assert(state.root != storage::kInvalidPageId && state.height >= 1);
  BTree tree(pool, config, AttachTag{});
  tree.root_ = state.root;
  tree.height_ = state.height;
  tree.size_ = state.size;
  return tree;
}

BTree::BulkBuilder::BulkBuilder(storage::BufferPool* pool,
                                const BTreeConfig& config, double fill)
    : pool_(pool),
      config_(config),
      leaf_target_(std::clamp(static_cast<int>(fill * config.leaf_capacity),
                              1, config.leaf_capacity)),
      internal_target_(
          std::clamp(static_cast<int>(fill * config.internal_capacity), 1,
                     config.internal_capacity)),
      v2_byte_target_(kV2EntriesOffset +
                      static_cast<size_t>(
                          fill * (storage::Page::kSize - kV2EntriesOffset))) {
  assert(fill > 0.0 && fill <= 1.0);
  pending_.reserve(leaf_target_);
}

void BTree::BulkBuilder::Add(const LeafEntry& entry) {
  assert(!have_last_key_ || !(entry.key < last_key_));
  PROBE_ASSERT_MSG(!have_last_key_ || !(entry.key < last_key_),
                   "bulk-load feed out of z order");
  last_key_ = entry.key;
  have_last_key_ = true;
  if (config_.leaf_format == LeafFormat::kV2) {
    // v2 leaves close on whichever binds first: the count target or the
    // fill-scaled worst-case byte budget.
    const size_t worst = V2EntryWorstSize(entry);
    if (!pending_.empty() &&
        (static_cast<int>(pending_.size()) >= leaf_target_ ||
         pending_worst_bytes_ + worst > v2_byte_target_)) {
      CloseLeaf();
    }
    pending_.push_back(entry);
    pending_worst_bytes_ += worst;
    ++total_entries_;
    return;
  }
  pending_.push_back(entry);
  ++total_entries_;
  if (static_cast<int>(pending_.size()) == leaf_target_) CloseLeaf();
}

void BTree::BulkBuilder::CloseLeaf() {
  if (pending_.empty()) return;
  PageId id;
  PageRef ref = pool_->New(&id);
  if (config_.leaf_format == LeafFormat::kV2) {
    V2Encode(&ref.page(), pending_, storage::kInvalidPageId);
    PROBE_AUDIT(AuditLeafV2Page(ref.page(), 1, config_.leaf_capacity));
  } else {
    LeafView(&ref.page()).Init();
    LeafView leaf(&ref.page());
    for (size_t i = 0; i < pending_.size(); ++i) {
      leaf.Set(static_cast<int>(i), pending_[i]);
    }
    leaf.set_count(static_cast<int>(pending_.size()));
    PROBE_AUDIT(AuditLeafPage(leaf, 1, config_.leaf_capacity));
  }
  ref.MarkDirty();
  if (prev_leaf_ != storage::kInvalidPageId) {
    // set_next_leaf writes the format-shared header field, so the link
    // works for either leaf layout.
    PageRef prev_ref = pool_->Fetch(prev_leaf_);
    LeafView(&prev_ref.page()).set_next_leaf(id);
    prev_ref.MarkDirty();
  }
  prev_leaf_ = id;
  leaves_.push_back(NodeInfo{id, pending_.front().key, pending_.back().key});
  pending_.clear();
  pending_worst_bytes_ = kV2EntriesOffset;
}

BTree BTree::BulkBuilder::Finish() {
  CloseLeaf();
  if (leaves_.empty()) return BTree(pool_, config_);  // empty tree

  // Build internal levels until a single root remains.
  std::vector<NodeInfo> nodes = std::move(leaves_);
  int height = 1;
  while (nodes.size() > 1) {
    std::vector<NodeInfo> parents;
    size_t i = 0;
    while (i < nodes.size()) {
      size_t take = std::min(static_cast<size_t>(internal_target_) + 1,
                             nodes.size() - i);
      // Avoid leaving a lone orphan child for the next parent.
      if (nodes.size() - i - take == 1) --take;
      assert(take >= 1);
      PageId id;
      PageRef ref = pool_->New(&id);
      InternalView node(&ref.page());
      node.Init(nodes[i].id);
      for (size_t j = 1; j < take; ++j) {
        const ZKey sep =
            PrefixSeparator(nodes[i + j - 1].last, nodes[i + j].first);
        node.InsertPairAt(static_cast<int>(j - 1), sep, nodes[i + j].id);
      }
      ref.MarkDirty();
      parents.push_back(
          NodeInfo{id, nodes[i].first, nodes[i + take - 1].last});
      i += take;
    }
    nodes = std::move(parents);
    ++height;
  }

  BTree tree(pool_, config_, AttachTag{});
  tree.root_ = nodes[0].id;
  tree.height_ = height;
  tree.size_ = total_entries_;
  return tree;
}

BTree BTree::BulkLoad(storage::BufferPool* pool,
                      std::span<const LeafEntry> sorted_entries,
                      const BTreeConfig& config, double fill) {
  BulkBuilder builder(pool, config, fill);
  for (const LeafEntry& entry : sorted_entries) builder.Add(entry);
  return builder.Finish();
}

}  // namespace probe::btree
