#include "btree/leaf_codec.h"

#include <bit>
#include <cassert>

#include "probe/check.h"

namespace probe::btree {

namespace {

using storage::Page;

/// Appends `v` as LEB128 at `data[pos]`; returns the new position.
size_t PutVarint(uint8_t* data, size_t pos, uint64_t v) {
  while (v >= 0x80) {
    data[pos++] = static_cast<uint8_t>(v) | 0x80;
    v >>= 7;
  }
  data[pos++] = static_cast<uint8_t>(v);
  return pos;
}

/// Reads a LEB128 varint at `data[pos]` into `*v`; returns the new
/// position. `limit` bounds the read (corrupt pages abort in audit
/// builds; release builds stop at the page edge).
size_t GetVarint(const uint8_t* data, size_t pos, size_t limit, uint64_t* v) {
  uint64_t out = 0;
  int shift = 0;
  while (pos < limit) {
    const uint8_t byte = data[pos++];
    out |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *v = out;
  return pos;
}

uint64_t PrefixMask(int prefix_len) {
  if (prefix_len <= 0) return 0;
  if (prefix_len >= 64) return ~0ULL;
  return ~0ULL << (64 - prefix_len);
}

}  // namespace

int CommonPrefixBits(const ZKey& a, const ZKey& b) {
  const int max = a.len < b.len ? a.len : b.len;
  const uint64_t diff = a.raw ^ b.raw;
  const int lead = diff == 0 ? 64 : std::countl_zero(diff);
  return lead < max ? lead : max;
}

size_t VarintLen(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

uint64_t SuffixValue(const ZKey& key, int prefix_len) {
  const int suffix_bits = key.len - prefix_len;
  if (suffix_bits <= 0) return 0;
  return (key.raw << prefix_len) >> (64 - suffix_bits);
}

size_t V2EntryEncodedSize(const LeafEntry& entry, int prefix_len) {
  return 1 + VarintLen(SuffixValue(entry.key, prefix_len)) +
         VarintLen(entry.payload);
}

int V2PrefixFor(std::span<const LeafEntry> entries) {
  if (entries.empty()) return 0;
  // Keys are sorted, so the common prefix of first and last is a prefix
  // of every key in between (lexicographic bitstring order).
  return CommonPrefixBits(entries.front().key, entries.back().key);
}

size_t V2EncodedSize(std::span<const LeafEntry> entries) {
  const int prefix = V2PrefixFor(entries);
  size_t bytes = kV2EntriesOffset;
  for (const LeafEntry& e : entries) bytes += V2EntryEncodedSize(e, prefix);
  return bytes;
}

bool V2Fits(std::span<const LeafEntry> entries) {
  return static_cast<int>(entries.size()) <= kV2MaxEntries &&
         V2EncodedSize(entries) <= Page::kSize;
}

size_t V2EntryWorstSize(const LeafEntry& entry) {
  return V2EntryEncodedSize(entry, 0);
}

size_t V2WorstSize(std::span<const LeafEntry> entries) {
  size_t bytes = kV2EntriesOffset;
  for (const LeafEntry& e : entries) bytes += V2EntryWorstSize(e);
  return bytes;
}

bool V2Admits(std::span<const LeafEntry> entries) {
  return static_cast<int>(entries.size()) <= kV2MaxEntries &&
         V2WorstSize(entries) <= Page::kSize;
}

size_t V2Encode(Page* page, std::span<const LeafEntry> entries,
                storage::PageId next_leaf) {
  PROBE_ASSERT_MSG(V2Fits(entries), "v2 leaf encode overflow");
  const int prefix = V2PrefixFor(entries);
  const ZKey last = entries.empty() ? ZKey{0, 0} : entries.back().key;

  page->Clear();
  page->Write<uint8_t>(kKindOffset, kLeafV2Kind);
  page->Write<uint16_t>(kCountOffset, static_cast<uint16_t>(entries.size()));
  page->Write<storage::PageId>(kNextLeafOffset, next_leaf);
  page->Write<uint8_t>(kV2PrefixLenOffset, static_cast<uint8_t>(prefix));
  page->Write<uint8_t>(kV2LastLenOffset, last.len);
  page->Write<uint64_t>(kV2PrefixOffset,
                        entries.empty() ? 0
                                        : entries.front().key.raw &
                                              PrefixMask(prefix));
  page->Write<uint64_t>(kV2LastRawOffset, last.raw);

  uint8_t* data = page->data();
  size_t pos = kV2EntriesOffset;
  for (const LeafEntry& e : entries) {
    assert(e.key.len >= prefix);
    data[pos++] = e.key.len;
    pos = PutVarint(data, pos, SuffixValue(e.key, prefix));
    pos = PutVarint(data, pos, e.payload);
  }
  page->Write<uint16_t>(kV2UsedOffset, static_cast<uint16_t>(pos));
  return pos;
}

int V2Decode(const Page& page, std::vector<LeafEntry>* out) {
  assert(page.Read<uint8_t>(kKindOffset) == kLeafV2Kind);
  const int count = page.Read<uint16_t>(kCountOffset);
  const size_t used = page.Read<uint16_t>(kV2UsedOffset);
  const int prefix = page.Read<uint8_t>(kV2PrefixLenOffset);
  const uint64_t prefix_raw = page.Read<uint64_t>(kV2PrefixOffset);

  out->clear();
  out->reserve(static_cast<size_t>(count));
  const uint8_t* data = page.data();
  size_t pos = kV2EntriesOffset;
  for (int i = 0; i < count; ++i) {
    PROBE_ASSERT_MSG(pos < used, "v2 leaf decode ran past used bytes");
    LeafEntry e;
    e.key.len = data[pos++];
    uint64_t suffix = 0;
    pos = GetVarint(data, pos, used, &suffix);
    pos = GetVarint(data, pos, used, &e.payload);
    const int suffix_bits = e.key.len - prefix;
    e.key.raw = prefix_raw;
    if (suffix_bits > 0) e.key.raw |= suffix << (64 - e.key.len);
    out->push_back(e);
  }
  PROBE_ASSERT_MSG(pos == used, "v2 leaf used-bytes header inconsistent");
  return count;
}

ZKey V2FirstKey(const Page& page) {
  assert(page.Read<uint16_t>(kCountOffset) > 0);
  const int prefix = page.Read<uint8_t>(kV2PrefixLenOffset);
  const uint64_t prefix_raw = page.Read<uint64_t>(kV2PrefixOffset);
  const uint8_t* data = page.data();
  size_t pos = kV2EntriesOffset;
  ZKey key;
  key.len = data[pos++];
  uint64_t suffix = 0;
  GetVarint(data, pos, page.Read<uint16_t>(kV2UsedOffset), &suffix);
  const int suffix_bits = key.len - prefix;
  key.raw = prefix_raw;
  if (suffix_bits > 0) key.raw |= suffix << (64 - key.len);
  return key;
}

ZKey V2LastKey(const Page& page) {
  assert(page.Read<uint16_t>(kCountOffset) > 0);
  ZKey key;
  key.raw = page.Read<uint64_t>(kV2LastRawOffset);
  key.len = page.Read<uint8_t>(kV2LastLenOffset);
  return key;
}

}  // namespace probe::btree
