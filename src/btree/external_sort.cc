#include "btree/external_sort.h"

#include <algorithm>
#include <cassert>
#include <queue>
#include <span>

namespace probe::btree {

namespace {

bool EntryLess(const LeafEntry& a, const LeafEntry& b) {
  if (a.key != b.key) return a.key < b.key;
  return a.payload < b.payload;
}

// Run pages use the leaf layout (count header + packed entries), which
// the LeafView already knows how to read and write.
void WriteRunPage(storage::Pager* pager, storage::PageId id,
                  std::span<const LeafEntry> entries) {
  storage::Page page;
  LeafView view(&page);
  view.Init();
  for (size_t i = 0; i < entries.size(); ++i) {
    view.Set(static_cast<int>(i), entries[i]);
  }
  view.set_count(static_cast<int>(entries.size()));
  pager->Write(id, page);
}

// Sequential reader over one spilled run.
class RunReader {
 public:
  RunReader(storage::Pager* pager, const std::vector<storage::PageId>* pages,
            uint64_t* pages_read)
      : pager_(pager), pages_(pages), pages_read_(pages_read) {
    LoadNextPage();
  }

  bool valid() const { return valid_; }
  const LeafEntry& entry() const { return current_; }

  void Next() {
    ++index_;
    if (index_ >= count_) {
      LoadNextPage();
    } else {
      current_ = LeafView(&page_).Get(index_);
    }
  }

 private:
  void LoadNextPage() {
    valid_ = false;
    while (page_pos_ < pages_->size()) {
      pager_->Read((*pages_)[page_pos_++], &page_);
      ++*pages_read_;
      LeafView view(&page_);
      count_ = view.count();
      if (count_ > 0) {
        index_ = 0;
        current_ = view.Get(0);
        valid_ = true;
        return;
      }
    }
  }

  storage::Pager* pager_;
  const std::vector<storage::PageId>* pages_;
  uint64_t* pages_read_;
  storage::Page page_;
  size_t page_pos_ = 0;
  int index_ = 0;
  int count_ = 0;
  LeafEntry current_;
  bool valid_ = false;
};

}  // namespace

ExternalSorter::ExternalSorter(storage::Pager* scratch, size_t budget_entries)
    : scratch_(scratch), budget_(budget_entries) {
  assert(budget_ >= 1);
  buffer_.reserve(budget_);
}

void ExternalSorter::Add(const LeafEntry& entry) {
  buffer_.push_back(entry);
  ++stats_.records;
  if (buffer_.size() >= budget_) Spill();
}

void ExternalSorter::Spill() {
  if (buffer_.empty()) return;
  std::sort(buffer_.begin(), buffer_.end(), EntryLess);
  Run run;
  run.records = buffer_.size();
  size_t pos = 0;
  while (pos < buffer_.size()) {
    const size_t take = std::min(static_cast<size_t>(kEntriesPerPage),
                                 buffer_.size() - pos);
    const storage::PageId id = scratch_->Allocate();
    WriteRunPage(scratch_, id,
                 std::span<const LeafEntry>(buffer_.data() + pos, take));
    run.pages.push_back(id);
    ++stats_.pages_written;
    pos += take;
  }
  stats_.spilled_records += run.records;
  runs_.push_back(std::move(run));
  ++stats_.runs;
  buffer_.clear();
}

void ExternalSorter::Drain(const std::function<void(const LeafEntry&)>& sink) {
  std::sort(buffer_.begin(), buffer_.end(), EntryLess);

  if (runs_.empty()) {
    // Everything fit in memory.
    for (const LeafEntry& entry : buffer_) sink(entry);
    buffer_.clear();
    return;
  }

  // K-way merge of the spilled runs plus the in-memory tail.
  std::vector<RunReader> readers;
  readers.reserve(runs_.size());
  for (const Run& run : runs_) {
    readers.emplace_back(scratch_, &run.pages, &stats_.pages_read);
  }
  size_t buffer_pos = 0;

  // Heap of (entry, source): source < readers.size() is a run; equal to
  // readers.size() is the in-memory buffer.
  struct HeapItem {
    LeafEntry entry;
    size_t source;
  };
  auto heap_greater = [](const HeapItem& a, const HeapItem& b) {
    if (a.entry.key != b.entry.key) return b.entry.key < a.entry.key;
    return b.entry.payload < a.entry.payload;
  };
  std::priority_queue<HeapItem, std::vector<HeapItem>, decltype(heap_greater)>
      heap(heap_greater);
  for (size_t r = 0; r < readers.size(); ++r) {
    if (readers[r].valid()) heap.push(HeapItem{readers[r].entry(), r});
  }
  if (buffer_pos < buffer_.size()) {
    heap.push(HeapItem{buffer_[buffer_pos], readers.size()});
  }

  while (!heap.empty()) {
    const HeapItem top = heap.top();
    heap.pop();
    sink(top.entry);
    if (top.source < readers.size()) {
      readers[top.source].Next();
      if (readers[top.source].valid()) {
        heap.push(HeapItem{readers[top.source].entry(), top.source});
      }
    } else {
      ++buffer_pos;
      if (buffer_pos < buffer_.size()) {
        heap.push(HeapItem{buffer_[buffer_pos], readers.size()});
      }
    }
  }
  buffer_.clear();
  runs_.clear();
}

}  // namespace probe::btree
