#ifndef PROBE_BTREE_SIMD_FILTER_H_
#define PROBE_BTREE_SIMD_FILTER_H_

#include <cstdint>

/// \file
/// Vectorized in-page interval filters for decoded z values.
///
/// Once a leaf's keys are decoded to full-resolution z integers, the
/// range-search merge spends its inner loop comparing them against the
/// current element's [zlo, zhi] interval. These kernels test four 64-bit
/// values per iteration with AVX2 (unsigned compares via the sign-bias
/// trick; _mm256_cmpgt_epi64 is signed). The dispatch mirrors the BMI2
/// PDEP/PEXT path in zorder/fast_interleave: one predictable branch on a
/// cached CPUID bit, suffixed variants pinned for equivalence tests and
/// benches, and a portable scalar fallback that is bitwise-identical by
/// construction. The *Avx2 functions must only be called when HasAvx2()
/// is true.

namespace probe::btree {

/// True when this CPU executes AVX2 and the *Avx2 variants are callable.
/// Detected once per process.
bool HasAvx2();

/// Forces the unsuffixed entry points onto the scalar path (benches use
/// this to measure the SIMD win on identical data). Not thread-safe; set
/// it before spawning query threads.
void SetForceScalarFilter(bool force);
bool ForceScalarFilter();

/// First index i in [0, n) with z[i] > bound; n when every value is
/// <= bound. Requires z sorted ascending (the decoded key order of a
/// leaf), which makes the result the length of the matching run.
int UpperBoundZ(const uint64_t* z, int n, uint64_t bound);
int UpperBoundZScalar(const uint64_t* z, int n, uint64_t bound);
int UpperBoundZAvx2(const uint64_t* z, int n, uint64_t bound);

/// Number of values in [lo, hi] (inclusive); no order requirement.
int CountInRangeZ(const uint64_t* z, int n, uint64_t lo, uint64_t hi);
int CountInRangeZScalar(const uint64_t* z, int n, uint64_t lo, uint64_t hi);
int CountInRangeZAvx2(const uint64_t* z, int n, uint64_t lo, uint64_t hi);

}  // namespace probe::btree

#endif  // PROBE_BTREE_SIMD_FILTER_H_
