#ifndef PROBE_BTREE_SIMD_FILTER_H_
#define PROBE_BTREE_SIMD_FILTER_H_

#include <cstdint>

/// \file
/// Vectorized in-page interval filters for decoded z values.
///
/// Once a leaf's keys are decoded to full-resolution z integers, the
/// range-search merge spends its inner loop comparing them against the
/// current element's [zlo, zhi] interval. These kernels test four 64-bit
/// values per iteration with AVX2 (unsigned compares via the sign-bias
/// trick; _mm256_cmpgt_epi64 is signed). The dispatch mirrors the BMI2
/// PDEP/PEXT path in zorder/fast_interleave: one predictable branch on a
/// cached CPUID bit, suffixed variants pinned for equivalence tests and
/// benches, and a portable scalar fallback that is bitwise-identical by
/// construction. The *Avx2 functions must only be called when HasAvx2()
/// is true.

namespace probe::btree {

/// True when this CPU executes AVX2 and the *Avx2 variants are callable.
/// Detected once per process.
bool HasAvx2();

/// Forces the unsuffixed entry points onto the scalar path (benches use
/// this to measure the SIMD win on identical data). Not thread-safe; set
/// it before spawning query threads.
void SetForceScalarFilter(bool force);
bool ForceScalarFilter();

/// First index i in [0, n) with z[i] > bound; n when every value is
/// <= bound. Requires z sorted ascending (the decoded key order of a
/// leaf), which makes the result the length of the matching run.
int UpperBoundZ(const uint64_t* z, int n, uint64_t bound);
int UpperBoundZScalar(const uint64_t* z, int n, uint64_t bound);
int UpperBoundZAvx2(const uint64_t* z, int n, uint64_t bound);

/// Number of values in [lo, hi] (inclusive); no order requirement.
int CountInRangeZ(const uint64_t* z, int n, uint64_t lo, uint64_t hi);
int CountInRangeZScalar(const uint64_t* z, int n, uint64_t lo, uint64_t hi);
int CountInRangeZAvx2(const uint64_t* z, int n, uint64_t lo, uint64_t hi);

/// Distance-join inner kernel: writes to `out` (capacity >= n) the indices
/// i in [0, n) with (xs[i]-qx)^2 + (ys[i]-qy)^2 <= r2 and returns how many
/// were written, in ascending order. This is the per-pair distance test of
/// the zones-style join, run over one zone's x-window per probe point.
///
/// Preconditions (the caller — relational/distance_join — enforces them by
/// falling back to 128-bit scalar arithmetic when they cannot hold): every
/// coordinate and qx/qy below 2^31, so each squared axis delta fits in 63
/// bits and the sum in 64 signed bits; r2 <= 2^63 - 1 (a larger radius is
/// clamped by the caller — distances themselves cannot exceed 2^63 - 1
/// under the coordinate bound, so the clamp loses nothing).
int CollectWithinDist2(const uint64_t* xs, const uint64_t* ys, int n,
                       uint64_t qx, uint64_t qy, uint64_t r2, int32_t* out);
int CollectWithinDist2Scalar(const uint64_t* xs, const uint64_t* ys, int n,
                             uint64_t qx, uint64_t qy, uint64_t r2,
                             int32_t* out);
int CollectWithinDist2Avx2(const uint64_t* xs, const uint64_t* ys, int n,
                           uint64_t qx, uint64_t qy, uint64_t r2,
                           int32_t* out);

}  // namespace probe::btree

#endif  // PROBE_BTREE_SIMD_FILTER_H_
