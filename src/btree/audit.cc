#include "btree/audit.h"

#include <vector>

#include "btree/leaf_codec.h"
#include "probe/check.h"
#include "storage/page.h"

namespace probe::btree {

void AuditLeafPage(const LeafView& leaf, int min_count, int max_count) {
  const int n = leaf.count();
  if (n < min_count || n > max_count) {
    check::AuditFailure(__FILE__, __LINE__, "leaf occupancy in bounds",
                        "leaf entry count outside [min, capacity]");
  }
  for (int i = 1; i < n; ++i) {
    if (leaf.Get(i).key < leaf.Get(i - 1).key) {
      check::AuditFailure(__FILE__, __LINE__, "leaf keys sorted",
                          "leaf keys out of z order");
    }
  }
}

void AuditInternalPage(const InternalView& node, int min_count,
                       int max_count) {
  const int n = node.count();
  if (n < min_count || n > max_count) {
    check::AuditFailure(__FILE__, __LINE__, "internal occupancy in bounds",
                        "internal pair count outside [min, capacity]");
  }
  for (int i = 1; i < n; ++i) {
    if (node.SeparatorAt(i) < node.SeparatorAt(i - 1)) {
      check::AuditFailure(__FILE__, __LINE__, "separators sorted",
                          "internal separators out of z order");
    }
  }
  for (int i = 0; i <= n; ++i) {
    if (node.ChildAt(i) == storage::kInvalidPageId) {
      check::AuditFailure(__FILE__, __LINE__, "child ids valid",
                          "internal node references an invalid page");
    }
  }
}

void AuditLeafV2Page(const storage::Page& page, int min_count, int max_count) {
  if (page.Read<uint8_t>(kKindOffset) != kLeafV2Kind) {
    check::AuditFailure(__FILE__, __LINE__, "v2 leaf kind tag",
                        "page audited as v2 leaf has a different kind");
  }
  const int header_count = page.Read<uint16_t>(kCountOffset);
  if (header_count < min_count || header_count > max_count) {
    check::AuditFailure(__FILE__, __LINE__, "v2 leaf occupancy in bounds",
                        "v2 leaf entry count outside [min, capacity]");
  }

  std::vector<LeafEntry> entries;
  const int decoded = V2Decode(page, &entries);
  if (decoded != header_count ||
      static_cast<int>(entries.size()) != header_count) {
    check::AuditFailure(__FILE__, __LINE__, "v2 decoded count matches header",
                        "v2 leaf decoded a different entry count");
  }

  const int prefix_len = page.Read<uint8_t>(kV2PrefixLenOffset);
  const uint64_t prefix_raw = page.Read<uint64_t>(kV2PrefixOffset);
  const uint64_t prefix_mask =
      prefix_len == 0 ? 0
                      : (prefix_len >= 64 ? ~0ULL : ~0ULL << (64 - prefix_len));
  for (size_t i = 0; i < entries.size(); ++i) {
    const ZKey& key = entries[i].key;
    if (key.len < prefix_len || (key.raw & prefix_mask) != prefix_raw) {
      check::AuditFailure(__FILE__, __LINE__, "v2 keys extend shared prefix",
                          "v2 leaf key does not start with the page prefix");
    }
    if (i > 0 && key < entries[i - 1].key) {
      check::AuditFailure(__FILE__, __LINE__, "v2 keys sorted",
                          "v2 leaf keys out of z order");
    }
  }
  if (!entries.empty()) {
    const ZKey last = V2LastKey(page);
    if (!(last == entries.back().key)) {
      check::AuditFailure(__FILE__, __LINE__, "v2 header last key",
                          "v2 leaf header last key disagrees with entries");
    }
  }
}

}  // namespace probe::btree
