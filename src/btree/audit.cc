#include "btree/audit.h"

#include "probe/check.h"
#include "storage/page.h"

namespace probe::btree {

void AuditLeafPage(const LeafView& leaf, int min_count, int max_count) {
  const int n = leaf.count();
  if (n < min_count || n > max_count) {
    check::AuditFailure(__FILE__, __LINE__, "leaf occupancy in bounds",
                        "leaf entry count outside [min, capacity]");
  }
  for (int i = 1; i < n; ++i) {
    if (leaf.Get(i).key < leaf.Get(i - 1).key) {
      check::AuditFailure(__FILE__, __LINE__, "leaf keys sorted",
                          "leaf keys out of z order");
    }
  }
}

void AuditInternalPage(const InternalView& node, int min_count,
                       int max_count) {
  const int n = node.count();
  if (n < min_count || n > max_count) {
    check::AuditFailure(__FILE__, __LINE__, "internal occupancy in bounds",
                        "internal pair count outside [min, capacity]");
  }
  for (int i = 1; i < n; ++i) {
    if (node.SeparatorAt(i) < node.SeparatorAt(i - 1)) {
      check::AuditFailure(__FILE__, __LINE__, "separators sorted",
                          "internal separators out of z order");
    }
  }
  for (int i = 0; i <= n; ++i) {
    if (node.ChildAt(i) == storage::kInvalidPageId) {
      check::AuditFailure(__FILE__, __LINE__, "child ids valid",
                          "internal node references an invalid page");
    }
  }
}

}  // namespace probe::btree
