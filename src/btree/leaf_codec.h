#ifndef PROBE_BTREE_LEAF_CODEC_H_
#define PROBE_BTREE_LEAF_CODEC_H_

#include <cstdint>
#include <span>
#include <vector>

#include "btree/node.h"
#include "storage/page.h"

/// \file
/// The compressed leaf format (v2): shared-prefix + suffix-varint pages.
///
/// Consecutive z values in a leaf share long common bit prefixes by
/// construction (a leaf owns a contiguous z interval), so the fixed
/// 17-byte entry of the v1 layout wastes most of its key bytes repeating
/// the leaf's prefix. The v2 page stores that prefix once in the header
/// and each entry as
///
///     key_len (1 byte) | suffix varint | payload varint
///
/// where the suffix is the key's bits after the shared prefix,
/// right-justified, LEB128-encoded. Typical full-resolution point pages
/// shrink from 17 to 5-8 bytes per entry, which multiplies keys-per-page
/// and divides the paper's page-access metric accordingly.
///
/// Layout (byte offsets; count and next-leaf sit at the same offsets as
/// the v1 header so chain-walking code is format-blind):
///
///     0       kind = kLeafV2Kind
///     2..3    entry count (uint16)
///     4..7    next leaf PageId
///     8..9    used bytes (uint16; end of the encoded entry area)
///     10      shared prefix length in bits (uint8)
///     11      last key length in bits (uint8)
///     12..19  shared prefix, left-justified (uint64)
///     20..27  last key raw, left-justified (uint64)
///     28..    encoded entries
///
/// The last key is duplicated in the header so a reader can decide "does
/// this whole leaf precede z?" without decoding any entry — the aggregate
/// pushdown counts interior leaves from the header alone.
///
/// v2 pages are mutated by decode -> edit -> re-encode. Admission is
/// deliberately *worst-case*: a page accepts entries while the sum of
/// their prefix-independent upper bounds (V2EntryWorstSize, i.e. the size
/// under an empty shared prefix) fits the page. The actual encoding is
/// never larger, and — unlike the actual size — the worst-case sum is
/// subset-additive, so any rebalancing subset of one or two admitted
/// pages is itself admissible. Without this, inserting a key that
/// collapses the shared prefix could widen every suffix at once and leave
/// no single split point where both halves fit.

namespace probe::btree {

/// Header offsets of the v2 leaf (kind/count/next-leaf are shared with v1).
inline constexpr size_t kV2UsedOffset = 8;
inline constexpr size_t kV2PrefixLenOffset = 10;
inline constexpr size_t kV2LastLenOffset = 11;
inline constexpr size_t kV2PrefixOffset = 12;
inline constexpr size_t kV2LastRawOffset = 20;
inline constexpr size_t kV2EntriesOffset = 28;

/// Hard cap on entries per v2 page: the smallest possible entry is 3
/// bytes (len byte + 1-byte suffix varint + 1-byte payload varint).
inline constexpr int kV2MaxEntries =
    static_cast<int>((storage::Page::kSize - kV2EntriesOffset) / 3);

/// Number of leading bits `a` and `b` share (clamped to the shorter key).
int CommonPrefixBits(const ZKey& a, const ZKey& b);

/// Bytes a LEB128 varint of `v` occupies (1..10).
size_t VarintLen(uint64_t v);

/// The key's bits after `prefix_len`, right-justified. Requires
/// prefix_len <= key.len (returns 0 when equal).
uint64_t SuffixValue(const ZKey& key, int prefix_len);

/// Encoded bytes of one entry under a given shared prefix.
size_t V2EntryEncodedSize(const LeafEntry& entry, int prefix_len);

/// Shared prefix the encoder would choose for `entries` (the common
/// prefix of first and last key; every key in a sorted run shares it).
int V2PrefixFor(std::span<const LeafEntry> entries);

/// Total page bytes (header + entries) `entries` encode to.
size_t V2EncodedSize(std::span<const LeafEntry> entries);

/// True when `entries` fit one v2 page (bytes and count).
bool V2Fits(std::span<const LeafEntry> entries);

/// Upper bound on one entry's encoded size under *any* shared prefix
/// (the size with an empty prefix; shrinking a suffix never widens its
/// varint). Page admission sums these so rebalancing subsets always fit.
size_t V2EntryWorstSize(const LeafEntry& entry);

/// Header + sum of V2EntryWorstSize over `entries`.
size_t V2WorstSize(std::span<const LeafEntry> entries);

/// Admission test: count cap and worst-case byte budget. Implies
/// V2Fits, and any subset of one or two admitted pages that is at most
/// half the combined worst-case bytes (plus one entry) is admitted too.
bool V2Admits(std::span<const LeafEntry> entries);

/// Encodes `entries` (sorted by key) into `page` as a v2 leaf with the
/// given next-leaf link. Asserts V2Fits. Returns the used byte count.
size_t V2Encode(storage::Page* page, std::span<const LeafEntry> entries,
                storage::PageId next_leaf);

/// Decodes all entries of a v2 page into `out` (cleared first). Returns
/// the entry count.
int V2Decode(const storage::Page& page, std::vector<LeafEntry>* out);

/// First key of a v2 page without a full decode. Requires count > 0.
ZKey V2FirstKey(const storage::Page& page);

/// Last key of a v2 page, read from the header. Requires count > 0.
ZKey V2LastKey(const storage::Page& page);

}  // namespace probe::btree

#endif  // PROBE_BTREE_LEAF_CODEC_H_
