#ifndef PROBE_BTREE_BTREE_H_
#define PROBE_BTREE_BTREE_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "btree/leaf_codec.h"
#include "btree/node.h"
#include "btree/zkey.h"
#include "storage/buffer_pool.h"

/// \file
/// A prefix B+-tree over z-value keys — the paper's storage structure.
///
/// "For the experiments we implemented a prefix B+tree to store points in
/// z order" (Section 5.3.2). The tree provides exactly the two access modes
/// the range-search merge needs (Section 3.3): *sequential* access via a
/// chained-leaf cursor and *random* access via Seek. Keys are z values
/// (full-resolution for points, variable-length for elements of decomposed
/// objects); payloads are 64-bit record identifiers. Duplicate keys are
/// allowed.
///
/// Capacities are configured in records per page, so the paper's
/// experimental setup ("page capacity was 20 points") is reproduced by
/// constructing with leaf_capacity = 20.

namespace probe::btree {

/// Which on-page layout the tree writes for *new* leaves. Reads and
/// mutations always dispatch on the page's own kind byte, so re-attaching
/// a tree built with one format under a config naming the other stays
/// correct — the flag only picks the layout of pages created afterwards.
enum class LeafFormat : uint8_t {
  kV1,  ///< fixed 17-byte entries (node.h)
  kV2,  ///< shared-prefix + suffix-varint compression (leaf_codec.h)
};

/// Tree shape parameters.
struct BTreeConfig {
  /// Max entries per leaf page. Must be in [2, LeafView::kMaxCapacity - 1]
  /// for v1 leaves and [2, kV2MaxEntries - 1] for v2 (one slot of slack
  /// lets inserts land before splitting). v2 pages are additionally
  /// bounded by bytes: a page admits entries while the sum of their
  /// worst-case encoded sizes fits, so the real v2 capacity is usually
  /// byte-driven.
  int leaf_capacity = LeafView::kMaxCapacity - 1;

  /// Max (separator, child) pairs per internal page. Must be in
  /// [2, InternalView::kMaxCapacity - 1].
  int internal_capacity = InternalView::kMaxCapacity - 1;

  /// Leaf layout for newly created pages.
  LeafFormat leaf_format = LeafFormat::kV1;

  /// Config writing compressed leaves packed to the page's byte budget.
  static BTreeConfig Compressed() {
    BTreeConfig config;
    config.leaf_format = LeafFormat::kV2;
    config.leaf_capacity = kV2MaxEntries - 1;
    return config;
  }
};

/// Structural statistics, computed by walking the tree.
struct BTreeShape {
  int height = 0;  // 1 = root is a leaf
  uint32_t leaf_pages = 0;
  uint32_t internal_pages = 0;
  uint64_t entries = 0;
};

/// The prefix B+-tree.
///
/// All page traffic goes through the BufferPool passed at construction, so
/// physical I/O and hit rates are observable there. The pool must have
/// more frames than the tree's height (ancestors stay pinned during
/// structural changes); 16 frames is plenty for any realistic tree.
class BTree {
 public:
  /// Creates an empty tree. The pool must outlive the tree.
  BTree(storage::BufferPool* pool, const BTreeConfig& config = {});

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;
  BTree(BTree&&) = default;
  BTree& operator=(BTree&&) = default;

  /// Inserts (key, payload). Duplicates (same key, even same payload) are
  /// kept; equal keys are stored adjacently in insertion-independent
  /// z order.
  void Insert(const ZKey& key, uint64_t payload);

  /// Removes one entry equal to (key, payload). Returns false if absent.
  bool Delete(const ZKey& key, uint64_t payload);

  /// Number of entries.
  uint64_t size() const { return size_; }

  /// Levels in the tree (1 when the root is a leaf).
  int height() const { return height_; }

  /// Walks the tree to count pages/entries per level.
  BTreeShape ComputeShape();

  /// Verifies structural invariants (ordering, separator routing, leaf
  /// chain, occupancy). Returns false and stops at the first violation.
  /// Intended for tests.
  bool CheckInvariants();

  /// One entry per leaf page, in chain order: the leaf's first key and its
  /// entry count. Used to reconstruct the partitioning of space induced by
  /// page boundaries (Figure 6).
  struct LeafSummary {
    ZKey first_key;
    int entries = 0;
  };
  std::vector<LeafSummary> LeafSequence();

  storage::BufferPool* pool() const { return pool_; }
  const BTreeConfig& config() const { return config_; }

  /// Forward iterator over entries in z order.
  ///
  /// A cursor supports the two access patterns of Section 3.3: Next()
  /// (sequential: follows the leaf chain) and Seek() (random: descends
  /// from the root to the leftmost entry with key >= target). leaf_loads()
  /// counts leaf pages entered, which is the "data pages accessed" metric
  /// of the paper's experiments.
  ///
  /// Cursors never mutate the tree (they take it const); page traffic goes
  /// through the tree's BufferPool, which is safe for concurrent readers.
  /// Any number of cursors — on any threads — may therefore iterate one
  /// tree at once, as long as no Insert/Delete runs concurrently. Each
  /// cursor holds a thread-local pin on its current leaf.
  class Cursor {
   public:
    explicit Cursor(const BTree* tree);

    /// Positions at the smallest entry. Returns false if the tree is empty.
    bool SeekFirst();

    /// Positions at the leftmost entry with key >= `key` (lower bound).
    /// Returns false if no such entry exists.
    bool Seek(const ZKey& key);

    /// True when positioned on an entry.
    bool Valid() const { return valid_; }

    /// The current entry. Requires Valid().
    const LeafEntry& entry() const { return current_; }

    /// Advances to the next entry in z order. Returns false at the end.
    bool Next();

    /// Leaf pages entered by this cursor so far (each arrival at a leaf
    /// counts once; re-reading entries of the current leaf is free).
    uint64_t leaf_loads() const { return leaf_loads_; }

    /// Internal (non-leaf) pages touched by Seek descents.
    uint64_t internal_loads() const { return internal_loads_; }

    /// Total entries residing on the leaves entered so far (counted once
    /// per arrival). With leaf_loads() and the query's result count this
    /// yields the paper's "efficiency" measure: how much of the retrieved
    /// data was relevant.
    uint64_t leaf_entries_seen() const { return leaf_entries_seen_; }

    /// Length of the run of entries on the *current leaf*, starting at the
    /// cursor, whose full-resolution z integers are <= `bound`. Backed by
    /// the SIMD interval filter over the leaf's decoded z array; scalar
    /// and vector paths return identical values. Requires Valid().
    int RunLengthLE(uint64_t bound);

    /// z integer / entry `k` positions ahead on the current leaf (0 = the
    /// cursor position). Requires k < the current leaf's remaining count.
    uint64_t PeekZ(int k);
    const LeafEntry& PeekEntry(int k);

    /// Advances by `k` entries; `k` may be at most the current leaf's
    /// remaining count (crossing into the next leaf when it lands exactly
    /// past the end). Returns false at the end of the tree.
    bool Advance(int k);

    /// Counts entries with z integer <= `bound` from the cursor forward,
    /// leaving the cursor on the first entry past the bound (or invalid
    /// at the end). Leaves fully below the bound are counted from their
    /// header alone — no entry is decoded or materialized — which is the
    /// aggregate pushdown's fast path.
    uint64_t CountWhileLE(uint64_t bound);

   private:
    bool AdvanceLeaf();
    void EnsureCache();
    int LeafCountHeader();
    uint64_t LeafLastZ();

    const BTree* tree_;
    storage::PageRef leaf_ref_;  // pin on the current leaf
    storage::PageId leaf_page_ = storage::kInvalidPageId;
    int index_ = 0;
    LeafEntry current_;
    bool valid_ = false;
    // Decoded image of the current leaf, built lazily on first entry
    // access and reused until the cursor leaves the page. v1 leaves batch
    // their fixed-width entries into it too, so the merge loop reads one
    // contiguous z array either way.
    std::vector<LeafEntry> cache_entries_;
    std::vector<uint64_t> cache_z_;
    bool cache_valid_ = false;
    uint64_t leaf_loads_ = 0;
    uint64_t internal_loads_ = 0;
    uint64_t leaf_entries_seen_ = 0;
  };

  /// Builds a tree from entries already sorted by (key, payload).
  /// `fill` in (0, 1] is the leaf/internal occupancy (1.0 = packed full).
  static BTree BulkLoad(storage::BufferPool* pool,
                        std::span<const LeafEntry> sorted_entries,
                        const BTreeConfig& config = {}, double fill = 1.0);

  /// The durable identity of a tree: everything needed to re-open it over
  /// the same page store (pages must have been flushed; the state itself
  /// is the caller's to persist, e.g. in a superblock, catalog, or the
  /// metadata blob of a WAL commit record).
  struct PersistentState {
    storage::PageId root = storage::kInvalidPageId;
    int height = 0;
    uint64_t size = 0;

    /// Fixed-width little-endian encoding (root, height, size).
    static constexpr size_t kEncodedBytes = 16;

    /// Serializes into `out[0, kEncodedBytes)`.
    void EncodeTo(uint8_t* out) const;

    /// Inverse of EncodeTo.
    static PersistentState Decode(const uint8_t* bytes);
  };

  /// Snapshot of the tree's identity. Call pool()->FlushAll() (and sync
  /// the pager) before persisting it.
  PersistentState DetachState() const { return {root_, height_, size_}; }

  /// Re-opens a tree previously described by DetachState() over a pool
  /// whose pager holds the flushed pages. The config must match the one
  /// the tree was built with.
  static BTree Attach(storage::BufferPool* pool, const PersistentState& state,
                      const BTreeConfig& config = {});

  /// Streaming bulk loader: feed entries in (key, payload) order, one at a
  /// time, and Finish() returns the packed tree. BulkLoad is a convenience
  /// wrapper over this; external sorting pipes its merge output straight
  /// in, so an index build never holds the sorted data in memory.
  class BulkBuilder {
   public:
    BulkBuilder(storage::BufferPool* pool, const BTreeConfig& config = {},
                double fill = 1.0);

    /// Adds the next entry; keys must be non-decreasing (asserted).
    void Add(const LeafEntry& entry);

    /// Completes the tree. The builder must not be reused afterwards.
    BTree Finish();

   private:
    struct NodeInfo {
      storage::PageId id;
      ZKey first;
      ZKey last;
    };

    void CloseLeaf();

    storage::BufferPool* pool_;
    BTreeConfig config_;
    int leaf_target_;
    int internal_target_;
    size_t v2_byte_target_;  // fill-scaled worst-case byte budget (v2)
    std::vector<NodeInfo> leaves_;
    std::vector<LeafEntry> pending_;  // entries of the open leaf
    size_t pending_worst_bytes_ = kV2EntriesOffset;
    storage::PageId prev_leaf_ = storage::kInvalidPageId;
    uint64_t total_entries_ = 0;
    bool have_last_key_ = false;
    ZKey last_key_;
  };

 private:
  // Tag constructor for Attach: does not allocate a root page.
  struct AttachTag {};
  BTree(storage::BufferPool* pool, const BTreeConfig& config, AttachTag)
      : pool_(pool), config_(config), root_(storage::kInvalidPageId),
        height_(0) {}

  struct SplitResult {
    bool split = false;
    ZKey separator;
    storage::PageId new_page = storage::kInvalidPageId;
  };

  // Recursive insert; fills `*result` when `page_id` split.
  void InsertRec(storage::PageId page_id, const ZKey& key, uint64_t payload,
                 SplitResult* result);

  // Insert into a v2 leaf: decode, insert, re-encode; splits against the
  // worst-case byte budget when the page no longer admits the set.
  void InsertLeafV2(storage::PageRef& ref, const ZKey& key, uint64_t payload,
                    SplitResult* result);

  // Recursive delete. Returns true if an entry was removed; sets
  // `*underflow` when `page_id` fell below its minimum occupancy.
  bool DeleteRec(storage::PageId page_id, const ZKey& key, uint64_t payload,
                 bool* underflow);

  // Rebalances the underfull child at position `child_idx` of `parent`.
  void FixUnderflow(InternalView& parent, int child_idx);

  // Leaf rebalancing when a v2 page is involved: merge the neighbor pair
  // when the union is admitted, else redistribute at a feasible split.
  void FixLeafUnderflowV2(InternalView& parent, int child_idx);

  int MinLeafCount() const { return V1LeafCap() / 2; }
  int MinInternalCount() const { return config_.internal_capacity / 2; }

  // Entry-count cap for v1 pages: the configured capacity clamped to the
  // fixed-width physical bound. A compressed-format config carries a v2
  // capacity far above what a v1 page can hold, yet v1 leaves still get
  // mutated in mixed trees (a v1 image re-attached under the compressed
  // config), so their split/underflow thresholds must not follow it.
  int V1LeafCap() const {
    return std::min(config_.leaf_capacity, LeafView::kMaxCapacity - 1);
  }

  // Entry-count cap for v2 pages: the configured capacity when this tree
  // writes v2 leaves, else the physical bound (covers mutating v2 pages
  // of a tree re-attached with a v1 config).
  int V2LeafCap() const {
    return config_.leaf_format == LeafFormat::kV2 ? config_.leaf_capacity
                                                  : kV2MaxEntries - 1;
  }

  storage::BufferPool* pool_;
  BTreeConfig config_;
  storage::PageId root_;
  int height_;
  uint64_t size_ = 0;
};

}  // namespace probe::btree

#endif  // PROBE_BTREE_BTREE_H_
