#ifndef PROBE_BTREE_ZKEY_H_
#define PROBE_BTREE_ZKEY_H_

#include <compare>
#include <cstdint>

#include "zorder/zvalue.h"

/// \file
/// B-tree key encoding for z values.
///
/// Section 4: "Z values can easily be represented as integers. Then the <
/// predicate of any programming language can be used to test precedence in
/// z order." A ZKey is the fixed-width on-page encoding of a (possibly
/// partial) z value: the left-justified bit word plus the significant-bit
/// count. Comparing (word, length) pairs is exactly lexicographic
/// bitstring order, so ordinary integer machinery sorts elements in
/// z order — the paper's claim that existing DBMS infrastructure suffices.

namespace probe::btree {

/// Fixed-width (9 meaningful bytes) encoding of a z value.
struct ZKey {
  /// Left-justified significant bits; bits past `len` are zero.
  uint64_t raw = 0;
  /// Number of significant bits, 0..64.
  uint8_t len = 0;

  static ZKey FromZValue(const zorder::ZValue& z) {
    return ZKey{z.raw(), static_cast<uint8_t>(z.length())};
  }

  zorder::ZValue ToZValue() const {
    return zorder::ZValue::FromRaw(raw, len);
  }

  /// Lexicographic bitstring order (z order).
  friend std::strong_ordering operator<=>(const ZKey& a, const ZKey& b) {
    if (a.raw != b.raw) return a.raw <=> b.raw;
    return a.len <=> b.len;
  }
  friend bool operator==(const ZKey& a, const ZKey& b) = default;
};

}  // namespace probe::btree

#endif  // PROBE_BTREE_ZKEY_H_
