#ifndef PROBE_BTREE_EXTERNAL_SORT_H_
#define PROBE_BTREE_EXTERNAL_SORT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "btree/node.h"
#include "storage/pager.h"

/// \file
/// External merge sort of (z value, payload) records over the page store.
///
/// Section 4: "Z values can easily be represented as integers ... so
/// existing sort utilities can be used to create z ordered sequences."
/// This is that sort utility for datasets larger than memory: records are
/// buffered up to a budget, spilled as sorted runs of pages on a scratch
/// pager, and k-way merged straight into a consumer — typically
/// BTree::BulkBuilder, so an index build touches each record O(1) times
/// in memory regardless of dataset size.

namespace probe::btree {

/// Sorting statistics.
struct ExternalSortStats {
  /// Sorted runs spilled to the scratch pager.
  uint64_t runs = 0;
  /// Pages written while spilling.
  uint64_t pages_written = 0;
  /// Pages read during the merge.
  uint64_t pages_read = 0;
  /// Records that went through the sorter.
  uint64_t records = 0;
  /// Records that were spilled (the rest stayed in the final buffer).
  uint64_t spilled_records = 0;
};

/// Streaming external sorter for LeafEntry records.
class ExternalSorter {
 public:
  /// Records per run page (what fits after a small count header).
  static constexpr int kEntriesPerPage = LeafView::kMaxCapacity;

  /// `scratch` holds the spill pages; `budget_entries` is the in-memory
  /// buffer size (>= 1). The scratch pager must outlive the sorter.
  ExternalSorter(storage::Pager* scratch, size_t budget_entries);

  /// Adds one record (any order).
  void Add(const LeafEntry& entry);

  /// Sorts and merges everything added so far, delivering records in
  /// (key, payload) order. Must be called exactly once.
  void Drain(const std::function<void(const LeafEntry&)>& sink);

  const ExternalSortStats& stats() const { return stats_; }

 private:
  struct Run {
    std::vector<storage::PageId> pages;
    uint64_t records = 0;
  };

  void Spill();

  storage::Pager* scratch_;
  size_t budget_;
  std::vector<LeafEntry> buffer_;
  std::vector<Run> runs_;
  ExternalSortStats stats_;
};

}  // namespace probe::btree

#endif  // PROBE_BTREE_EXTERNAL_SORT_H_
