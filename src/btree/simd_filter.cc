#include "btree/simd_filter.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define PROBE_HAVE_AVX2_TARGET 1
#include <immintrin.h>
#else
#define PROBE_HAVE_AVX2_TARGET 0
#endif

namespace probe::btree {

namespace {

#if PROBE_HAVE_AVX2_TARGET
bool DetectAvx2() { return __builtin_cpu_supports("avx2"); }
#else
bool DetectAvx2() { return false; }
#endif

const bool g_has_avx2 = DetectAvx2();
bool g_force_scalar = false;

}  // namespace

bool HasAvx2() { return g_has_avx2; }

void SetForceScalarFilter(bool force) { g_force_scalar = force; }

bool ForceScalarFilter() { return g_force_scalar; }

int UpperBoundZScalar(const uint64_t* z, int n, uint64_t bound) {
  int i = 0;
  while (i < n && z[i] <= bound) ++i;
  return i;
}

int CountInRangeZScalar(const uint64_t* z, int n, uint64_t lo, uint64_t hi) {
  int count = 0;
  for (int i = 0; i < n; ++i) {
    if (z[i] >= lo && z[i] <= hi) ++count;
  }
  return count;
}

#if PROBE_HAVE_AVX2_TARGET

namespace {

// _mm256_cmpgt_epi64 compares signed; flipping the sign bit turns an
// unsigned compare into the signed one.
constexpr int64_t kSignBias = static_cast<int64_t>(0x8000000000000000ULL);

}  // namespace

__attribute__((target("avx2"))) int UpperBoundZAvx2(const uint64_t* z, int n,
                                                    uint64_t bound) {
  const __m256i bias = _mm256_set1_epi64x(kSignBias);
  const __m256i vbound =
      _mm256_xor_si256(_mm256_set1_epi64x(static_cast<int64_t>(bound)), bias);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(z + i)), bias);
    const __m256i gt = _mm256_cmpgt_epi64(v, vbound);
    const int mask = _mm256_movemask_pd(_mm256_castsi256_pd(gt));
    // Values are sorted ascending, so the first lane past the bound ends
    // the run.
    if (mask != 0) return i + __builtin_ctz(static_cast<unsigned>(mask));
  }
  for (; i < n; ++i) {
    if (z[i] > bound) return i;
  }
  return n;
}

__attribute__((target("avx2"))) int CountInRangeZAvx2(const uint64_t* z, int n,
                                                      uint64_t lo,
                                                      uint64_t hi) {
  const __m256i bias = _mm256_set1_epi64x(kSignBias);
  const __m256i vlo =
      _mm256_xor_si256(_mm256_set1_epi64x(static_cast<int64_t>(lo)), bias);
  const __m256i vhi =
      _mm256_xor_si256(_mm256_set1_epi64x(static_cast<int64_t>(hi)), bias);
  int count = 0;
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(z + i)), bias);
    // in range == !(v < lo) && !(v > hi)
    const __m256i below = _mm256_cmpgt_epi64(vlo, v);
    const __m256i above = _mm256_cmpgt_epi64(v, vhi);
    const __m256i out = _mm256_or_si256(below, above);
    const int mask = _mm256_movemask_pd(_mm256_castsi256_pd(out));
    count += 4 - __builtin_popcount(static_cast<unsigned>(mask));
  }
  for (; i < n; ++i) {
    if (z[i] >= lo && z[i] <= hi) ++count;
  }
  return count;
}

#else  // !PROBE_HAVE_AVX2_TARGET — keep the symbols linkable everywhere.

int UpperBoundZAvx2(const uint64_t* z, int n, uint64_t bound) {
  return UpperBoundZScalar(z, n, bound);
}

int CountInRangeZAvx2(const uint64_t* z, int n, uint64_t lo, uint64_t hi) {
  return CountInRangeZScalar(z, n, lo, hi);
}

#endif  // PROBE_HAVE_AVX2_TARGET

int UpperBoundZ(const uint64_t* z, int n, uint64_t bound) {
  return (g_has_avx2 && !g_force_scalar) ? UpperBoundZAvx2(z, n, bound)
                                         : UpperBoundZScalar(z, n, bound);
}

int CountInRangeZ(const uint64_t* z, int n, uint64_t lo, uint64_t hi) {
  return (g_has_avx2 && !g_force_scalar) ? CountInRangeZAvx2(z, n, lo, hi)
                                         : CountInRangeZScalar(z, n, lo, hi);
}

}  // namespace probe::btree
