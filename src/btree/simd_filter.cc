#include "btree/simd_filter.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define PROBE_HAVE_AVX2_TARGET 1
#include <immintrin.h>
#else
#define PROBE_HAVE_AVX2_TARGET 0
#endif

namespace probe::btree {

namespace {

#if PROBE_HAVE_AVX2_TARGET
bool DetectAvx2() { return __builtin_cpu_supports("avx2"); }
#else
bool DetectAvx2() { return false; }
#endif

const bool g_has_avx2 = DetectAvx2();
bool g_force_scalar = false;

}  // namespace

bool HasAvx2() { return g_has_avx2; }

void SetForceScalarFilter(bool force) { g_force_scalar = force; }

bool ForceScalarFilter() { return g_force_scalar; }

int UpperBoundZScalar(const uint64_t* z, int n, uint64_t bound) {
  int i = 0;
  while (i < n && z[i] <= bound) ++i;
  return i;
}

int CountInRangeZScalar(const uint64_t* z, int n, uint64_t lo, uint64_t hi) {
  int count = 0;
  for (int i = 0; i < n; ++i) {
    if (z[i] >= lo && z[i] <= hi) ++count;
  }
  return count;
}

int CollectWithinDist2Scalar(const uint64_t* xs, const uint64_t* ys, int n,
                             uint64_t qx, uint64_t qy, uint64_t r2,
                             int32_t* out) {
  int count = 0;
  for (int i = 0; i < n; ++i) {
    const uint64_t dx = xs[i] > qx ? xs[i] - qx : qx - xs[i];
    const uint64_t dy = ys[i] > qy ? ys[i] - qy : qy - ys[i];
    // Coordinates are < 2^31 (see the header contract), so each square
    // fits in 62 bits and the sum in 63 — no wrap.
    if (dx * dx + dy * dy <= r2) out[count++] = i;
  }
  return count;
}

#if PROBE_HAVE_AVX2_TARGET

namespace {

// _mm256_cmpgt_epi64 compares signed; flipping the sign bit turns an
// unsigned compare into the signed one.
constexpr int64_t kSignBias = static_cast<int64_t>(0x8000000000000000ULL);

}  // namespace

__attribute__((target("avx2"))) int UpperBoundZAvx2(const uint64_t* z, int n,
                                                    uint64_t bound) {
  const __m256i bias = _mm256_set1_epi64x(kSignBias);
  const __m256i vbound =
      _mm256_xor_si256(_mm256_set1_epi64x(static_cast<int64_t>(bound)), bias);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(z + i)), bias);
    const __m256i gt = _mm256_cmpgt_epi64(v, vbound);
    const int mask = _mm256_movemask_pd(_mm256_castsi256_pd(gt));
    // Values are sorted ascending, so the first lane past the bound ends
    // the run.
    if (mask != 0) return i + __builtin_ctz(static_cast<unsigned>(mask));
  }
  for (; i < n; ++i) {
    if (z[i] > bound) return i;
  }
  return n;
}

__attribute__((target("avx2"))) int CountInRangeZAvx2(const uint64_t* z, int n,
                                                      uint64_t lo,
                                                      uint64_t hi) {
  const __m256i bias = _mm256_set1_epi64x(kSignBias);
  const __m256i vlo =
      _mm256_xor_si256(_mm256_set1_epi64x(static_cast<int64_t>(lo)), bias);
  const __m256i vhi =
      _mm256_xor_si256(_mm256_set1_epi64x(static_cast<int64_t>(hi)), bias);
  int count = 0;
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(z + i)), bias);
    // in range == !(v < lo) && !(v > hi)
    const __m256i below = _mm256_cmpgt_epi64(vlo, v);
    const __m256i above = _mm256_cmpgt_epi64(v, vhi);
    const __m256i out = _mm256_or_si256(below, above);
    const int mask = _mm256_movemask_pd(_mm256_castsi256_pd(out));
    count += 4 - __builtin_popcount(static_cast<unsigned>(mask));
  }
  for (; i < n; ++i) {
    if (z[i] >= lo && z[i] <= hi) ++count;
  }
  return count;
}

__attribute__((target("avx2"))) int CollectWithinDist2Avx2(
    const uint64_t* xs, const uint64_t* ys, int n, uint64_t qx, uint64_t qy,
    uint64_t r2, int32_t* out) {
  // All inputs are < 2^31 (header contract): deltas fit in signed 32 bits,
  // so _mm256_mul_epi32 — which multiplies the sign-extended low 32 bits
  // of each 64-bit lane — squares them exactly, and the 64-bit sums stay
  // below 2^63, making the signed 64-bit compare correct without the
  // sign-bias trick.
  const __m256i vqx = _mm256_set1_epi64x(static_cast<int64_t>(qx));
  const __m256i vqy = _mm256_set1_epi64x(static_cast<int64_t>(qy));
  const __m256i vr2 = _mm256_set1_epi64x(static_cast<int64_t>(r2));
  int count = 0;
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(xs + i));
    const __m256i vy =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ys + i));
    const __m256i dx = _mm256_sub_epi64(vx, vqx);
    const __m256i dy = _mm256_sub_epi64(vy, vqy);
    const __m256i dx2 = _mm256_mul_epi32(dx, dx);
    const __m256i dy2 = _mm256_mul_epi32(dy, dy);
    const __m256i d2 = _mm256_add_epi64(dx2, dy2);
    const __m256i over = _mm256_cmpgt_epi64(d2, vr2);
    const int mask = _mm256_movemask_pd(_mm256_castsi256_pd(over));
    for (int lane = 0; lane < 4; ++lane) {
      if ((mask & (1 << lane)) == 0) out[count++] = i + lane;
    }
  }
  for (; i < n; ++i) {
    const uint64_t dx = xs[i] > qx ? xs[i] - qx : qx - xs[i];
    const uint64_t dy = ys[i] > qy ? ys[i] - qy : qy - ys[i];
    if (dx * dx + dy * dy <= r2) out[count++] = i;
  }
  return count;
}

#else  // !PROBE_HAVE_AVX2_TARGET — keep the symbols linkable everywhere.

int UpperBoundZAvx2(const uint64_t* z, int n, uint64_t bound) {
  return UpperBoundZScalar(z, n, bound);
}

int CountInRangeZAvx2(const uint64_t* z, int n, uint64_t lo, uint64_t hi) {
  return CountInRangeZScalar(z, n, lo, hi);
}

int CollectWithinDist2Avx2(const uint64_t* xs, const uint64_t* ys, int n,
                           uint64_t qx, uint64_t qy, uint64_t r2,
                           int32_t* out) {
  return CollectWithinDist2Scalar(xs, ys, n, qx, qy, r2, out);
}

#endif  // PROBE_HAVE_AVX2_TARGET

int UpperBoundZ(const uint64_t* z, int n, uint64_t bound) {
  return (g_has_avx2 && !g_force_scalar) ? UpperBoundZAvx2(z, n, bound)
                                         : UpperBoundZScalar(z, n, bound);
}

int CountInRangeZ(const uint64_t* z, int n, uint64_t lo, uint64_t hi) {
  return (g_has_avx2 && !g_force_scalar) ? CountInRangeZAvx2(z, n, lo, hi)
                                         : CountInRangeZScalar(z, n, lo, hi);
}

int CollectWithinDist2(const uint64_t* xs, const uint64_t* ys, int n,
                       uint64_t qx, uint64_t qy, uint64_t r2, int32_t* out) {
  return (g_has_avx2 && !g_force_scalar)
             ? CollectWithinDist2Avx2(xs, ys, n, qx, qy, r2, out)
             : CollectWithinDist2Scalar(xs, ys, n, qx, qy, r2, out);
}

}  // namespace probe::btree
