#ifndef PROBE_BTREE_AUDIT_H_
#define PROBE_BTREE_AUDIT_H_

#include "btree/node.h"

/// \file
/// Page-local B-tree auditors: key order and occupancy for one node.
///
/// BTree::CheckInvariants walks the whole tree (O(n)); these are the O(page)
/// checks cheap enough to run after every structural mutation in auditing
/// builds. They abort on violation and return normally otherwise.

namespace probe::btree {

/// Keys non-decreasing (duplicates allowed), count within [min_count,
/// max_count]. Pass min_count 0 for pages allowed to underflow (the root,
/// or a page mid-rebalance).
void AuditLeafPage(const LeafView& leaf, int min_count, int max_count);

/// Separators non-decreasing (prefix-truncated separators of a duplicate
/// run may repeat), pair count within [min_count, max_count], all child
/// ids valid.
void AuditInternalPage(const InternalView& node, int min_count,
                       int max_count);

/// Compressed-leaf (v2) audit: kind tag, count within [min_count,
/// max_count], every decoded key extends the stored shared prefix, keys
/// in z order, decoded count == header count (V2Decode itself verifies
/// the used-bytes accounting), and the header's last key equal to the
/// last decoded key.
void AuditLeafV2Page(const storage::Page& page, int min_count, int max_count);

}  // namespace probe::btree

#endif  // PROBE_BTREE_AUDIT_H_
