#ifndef PROBE_BTREE_NODE_H_
#define PROBE_BTREE_NODE_H_

#include <cstdint>

#include "btree/zkey.h"
#include "storage/page.h"

/// \file
/// On-page node layouts of the prefix B+-tree.
///
/// Two node kinds share a small header:
///   byte 0      : kind (0 = leaf, 1 = internal)
///   bytes 2..3  : entry count (uint16)
///   bytes 4..7  : leaf only — PageId of the next leaf (the chain that
///                 gives the sequential access the merge algorithms need)
/// Leaf entries are (key.raw, key.len, payload) records; internal nodes
/// hold a leftmost child followed by (separator, child) entries where the
/// separator is a *prefix-truncated* key (the "prefix B+-tree" of the
/// paper's experimental setup): the shortest z-value prefix that routes
/// correctly, which both shrinks separators and aligns them with element
/// boundaries.
///
/// These views do not own the page; they are cheap stamps over a pinned
/// buffer frame.

namespace probe::btree {

/// Node kind tags. kLeafV2Kind marks the compressed leaf layout of
/// leaf_codec.h; its count and next-leaf fields sit at the same offsets
/// as the v1 leaf, so chain walking and occupancy reads are format-blind.
inline constexpr uint8_t kLeafKind = 0;
inline constexpr uint8_t kInternalKind = 1;
inline constexpr uint8_t kLeafV2Kind = 2;

/// True for either leaf layout. Structural code dispatches on the page's
/// own kind byte, so a tree holding v2 pages stays readable even when
/// re-attached with a v1-format config.
inline constexpr bool IsLeafKind(uint8_t kind) {
  return kind == kLeafKind || kind == kLeafV2Kind;
}

/// Byte offsets of the common header.
inline constexpr size_t kKindOffset = 0;
inline constexpr size_t kCountOffset = 2;
inline constexpr size_t kNextLeafOffset = 4;
inline constexpr size_t kEntriesOffset = 12;

/// A (key, payload) record in a leaf.
struct LeafEntry {
  ZKey key;
  uint64_t payload = 0;
};

/// Read/write view of a leaf page.
class LeafView {
 public:
  /// Bytes per leaf entry: key raw (8) + key len (1) + payload (8).
  static constexpr size_t kEntryBytes = 17;

  /// Largest entry count a page can physically hold.
  static constexpr int kMaxCapacity =
      static_cast<int>((storage::Page::kSize - kEntriesOffset) / kEntryBytes);

  explicit LeafView(storage::Page* page) : page_(page) {}

  /// Stamps a fresh page as an empty leaf.
  void Init();

  bool IsLeaf() const { return page_->Read<uint8_t>(kKindOffset) == kLeafKind; }
  int count() const { return page_->Read<uint16_t>(kCountOffset); }
  void set_count(int n) {
    page_->Write<uint16_t>(kCountOffset, static_cast<uint16_t>(n));
  }

  storage::PageId next_leaf() const {
    return page_->Read<storage::PageId>(kNextLeafOffset);
  }
  void set_next_leaf(storage::PageId id) {
    page_->Write<storage::PageId>(kNextLeafOffset, id);
  }

  LeafEntry Get(int i) const;
  void Set(int i, const LeafEntry& entry);

  /// Inserts at position `i`, shifting later entries right.
  void InsertAt(int i, const LeafEntry& entry);

  /// Removes position `i`, shifting later entries left.
  void RemoveAt(int i);

  /// First position whose key is >= `key` (by z order); count() if none.
  int LowerBound(const ZKey& key) const;

 private:
  storage::Page* page_;
};

/// Read/write view of an internal page.
class InternalView {
 public:
  /// Bytes per (separator, child) entry: sep raw (8) + sep len (1) +
  /// child id (4).
  static constexpr size_t kEntryBytes = 13;
  /// The leftmost child id sits first in the entry area.
  static constexpr size_t kChild0Offset = kEntriesOffset;
  static constexpr size_t kPairsOffset = kChild0Offset + sizeof(uint32_t);

  static constexpr int kMaxCapacity =
      static_cast<int>((storage::Page::kSize - kPairsOffset) / kEntryBytes);

  explicit InternalView(storage::Page* page) : page_(page) {}

  /// Stamps a fresh page as an internal node with the given leftmost child.
  void Init(storage::PageId child0);

  bool IsLeaf() const { return page_->Read<uint8_t>(kKindOffset) == kLeafKind; }
  /// Number of (separator, child) pairs; the node has count()+1 children.
  int count() const { return page_->Read<uint16_t>(kCountOffset); }
  void set_count(int n) {
    page_->Write<uint16_t>(kCountOffset, static_cast<uint16_t>(n));
  }

  storage::PageId child0() const {
    return page_->Read<storage::PageId>(kChild0Offset);
  }
  void set_child0(storage::PageId id) {
    page_->Write<storage::PageId>(kChild0Offset, id);
  }

  ZKey SeparatorAt(int i) const;
  storage::PageId ChildAt(int i) const;  // i in [0, count()]; 0 = child0
  void SetSeparator(int i, const ZKey& key);
  void SetPair(int i, const ZKey& sep, storage::PageId child);

  /// Inserts pair (sep, child) at position `i`.
  void InsertPairAt(int i, const ZKey& sep, storage::PageId child);

  /// Removes pair `i` (separator i and the child to its right).
  void RemovePairAt(int i);

  /// Child index to descend into when looking for the *leftmost* entry with
  /// key >= `key`: the child after the last separator that is < key.
  int DescendLeft(const ZKey& key) const;

  /// Child index for inserts: the child after the last separator <= key,
  /// so duplicates append to the right.
  int DescendRight(const ZKey& key) const;

 private:
  storage::Page* page_;
};

/// Shortest z-value prefix p of `right` with `left` < p (and, since a
/// prefix never exceeds its extension, p <= right). Used as the separator
/// pushed up when a node is split between keys `left` and `right`; this is
/// the prefix truncation that gives the prefix B+-tree its name. Requires
/// left < right; when left == right (a run of duplicate keys is being
/// split) returns `right` itself.
ZKey PrefixSeparator(const ZKey& left, const ZKey& right);

}  // namespace probe::btree

#endif  // PROBE_BTREE_NODE_H_
