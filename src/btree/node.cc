#include "btree/node.h"

#include <cassert>
#include <cstring>

namespace probe::btree {

namespace {

size_t LeafEntryOffset(int i) {
  return kEntriesOffset + static_cast<size_t>(i) * LeafView::kEntryBytes;
}

/// The on-page image of one v1 leaf entry. Get/Set move a whole entry
/// with a single 17-byte memcpy instead of three field-sized page
/// accesses — the difference is measurable in the scan loop (bench_micro
/// BM_LeafViewGet).
struct PackedLeafEntry {
  uint64_t raw;
  uint8_t len;
  uint64_t payload;
} __attribute__((packed));

static_assert(sizeof(PackedLeafEntry) == LeafView::kEntryBytes);

size_t PairOffset(int i) {
  return InternalView::kPairsOffset +
         static_cast<size_t>(i) * InternalView::kEntryBytes;
}

}  // namespace

void LeafView::Init() {
  page_->Clear();
  page_->Write<uint8_t>(kKindOffset, kLeafKind);
  page_->Write<uint16_t>(kCountOffset, 0);
  page_->Write<storage::PageId>(kNextLeafOffset, storage::kInvalidPageId);
}

LeafEntry LeafView::Get(int i) const {
  assert(i >= 0 && i < count());
  PackedLeafEntry packed;
  std::memcpy(&packed, page_->data() + LeafEntryOffset(i), sizeof packed);
  return LeafEntry{ZKey{packed.raw, packed.len}, packed.payload};
}

void LeafView::Set(int i, const LeafEntry& entry) {
  assert(i >= 0 && i < kMaxCapacity);
  const PackedLeafEntry packed{entry.key.raw, entry.key.len, entry.payload};
  std::memcpy(page_->data() + LeafEntryOffset(i), &packed, sizeof packed);
}

void LeafView::InsertAt(int i, const LeafEntry& entry) {
  const int n = count();
  assert(i >= 0 && i <= n && n < kMaxCapacity);
  std::memmove(page_->data() + LeafEntryOffset(i + 1),
               page_->data() + LeafEntryOffset(i),
               static_cast<size_t>(n - i) * kEntryBytes);
  set_count(n + 1);
  Set(i, entry);
}

void LeafView::RemoveAt(int i) {
  const int n = count();
  assert(i >= 0 && i < n);
  std::memmove(page_->data() + LeafEntryOffset(i),
               page_->data() + LeafEntryOffset(i + 1),
               static_cast<size_t>(n - i - 1) * kEntryBytes);
  set_count(n - 1);
}

int LeafView::LowerBound(const ZKey& key) const {
  int lo = 0;
  int hi = count();
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (Get(mid).key < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void InternalView::Init(storage::PageId child0) {
  page_->Clear();
  page_->Write<uint8_t>(kKindOffset, kInternalKind);
  page_->Write<uint16_t>(kCountOffset, 0);
  set_child0(child0);
}

ZKey InternalView::SeparatorAt(int i) const {
  assert(i >= 0 && i < count());
  const size_t off = PairOffset(i);
  ZKey key;
  key.raw = page_->Read<uint64_t>(off);
  key.len = page_->Read<uint8_t>(off + 8);
  return key;
}

storage::PageId InternalView::ChildAt(int i) const {
  assert(i >= 0 && i <= count());
  if (i == 0) return child0();
  return page_->Read<storage::PageId>(PairOffset(i - 1) + 9);
}

void InternalView::SetSeparator(int i, const ZKey& key) {
  assert(i >= 0 && i < count());
  const size_t off = PairOffset(i);
  page_->Write<uint64_t>(off, key.raw);
  page_->Write<uint8_t>(off + 8, key.len);
}

void InternalView::SetPair(int i, const ZKey& sep, storage::PageId child) {
  assert(i >= 0 && i < kMaxCapacity);
  const size_t off = PairOffset(i);
  page_->Write<uint64_t>(off, sep.raw);
  page_->Write<uint8_t>(off + 8, sep.len);
  page_->Write<storage::PageId>(off + 9, child);
}

void InternalView::InsertPairAt(int i, const ZKey& sep,
                                storage::PageId child) {
  const int n = count();
  assert(i >= 0 && i <= n && n < kMaxCapacity);
  std::memmove(page_->data() + PairOffset(i + 1), page_->data() + PairOffset(i),
               static_cast<size_t>(n - i) * kEntryBytes);
  set_count(n + 1);
  SetPair(i, sep, child);
}

void InternalView::RemovePairAt(int i) {
  const int n = count();
  assert(i >= 0 && i < n);
  std::memmove(page_->data() + PairOffset(i), page_->data() + PairOffset(i + 1),
               static_cast<size_t>(n - i - 1) * kEntryBytes);
  set_count(n - 1);
}

int InternalView::DescendLeft(const ZKey& key) const {
  // Last separator strictly below `key`; equal separators send us left so a
  // lower_bound scan starts at the leftmost duplicate.
  int lo = 0;
  int hi = count();
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (SeparatorAt(mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

int InternalView::DescendRight(const ZKey& key) const {
  int lo = 0;
  int hi = count();
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (key < SeparatorAt(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

ZKey PrefixSeparator(const ZKey& left, const ZKey& right) {
  const zorder::ZValue right_z = right.ToZValue();
  for (int len = 0; len <= right_z.length(); ++len) {
    const ZKey candidate = ZKey::FromZValue(right_z.Prefix(len));
    if (left < candidate) return candidate;
  }
  return right;  // left == right: a duplicate run is being split
}

}  // namespace probe::btree
