#ifndef PROBE_RELATIONAL_CATALOG_H_
#define PROBE_RELATIONAL_CATALOG_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "geometry/object.h"

/// \file
/// The object catalog: the "specialized processors encapsulated in object
/// classes" of the paper's architecture.
///
/// Relations store object *identifiers*; the geometry itself lives behind
/// an ADT boundary. The DBMS side (Decompose, spatial join) only ever asks
/// the catalog for a classifier — exactly the division of labor PROBE
/// proposes: the DBMS handles collections, the object class handles the
/// single object.

namespace probe::relational {

/// Registry mapping object ids to spatial objects.
class ObjectCatalog {
 public:
  /// Registers an object and returns its fresh id (ids start at 1).
  uint64_t Register(std::shared_ptr<const geometry::SpatialObject> object) {
    const uint64_t id = next_id_++;
    objects_.emplace(id, std::move(object));
    return id;
  }

  /// The object with id `id`; null if unknown.
  const geometry::SpatialObject* Get(uint64_t id) const {
    auto it = objects_.find(id);
    return it == objects_.end() ? nullptr : it->second.get();
  }

  size_t size() const { return objects_.size(); }

 private:
  std::unordered_map<uint64_t, std::shared_ptr<const geometry::SpatialObject>>
      objects_;
  uint64_t next_id_ = 1;
};

}  // namespace probe::relational

#endif  // PROBE_RELATIONAL_CATALOG_H_
