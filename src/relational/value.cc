#include "relational/value.h"

namespace probe::relational {

ValueType TypeOf(const Value& v) {
  return static_cast<ValueType>(v.index());
}

std::string ValueToString(const Value& v) {
  switch (TypeOf(v)) {
    case ValueType::kInt:
      return std::to_string(std::get<int64_t>(v));
    case ValueType::kReal:
      return std::to_string(std::get<double>(v));
    case ValueType::kString:
      return std::get<std::string>(v);
    case ValueType::kZValue:
      return std::get<zorder::ZValue>(v).ToString();
  }
  return "<?>";
}

bool ValueLess(const Value& a, const Value& b) {
  if (a.index() != b.index()) return a.index() < b.index();
  switch (TypeOf(a)) {
    case ValueType::kInt:
      return std::get<int64_t>(a) < std::get<int64_t>(b);
    case ValueType::kReal:
      return std::get<double>(a) < std::get<double>(b);
    case ValueType::kString:
      return std::get<std::string>(a) < std::get<std::string>(b);
    case ValueType::kZValue:
      return std::get<zorder::ZValue>(a) < std::get<zorder::ZValue>(b);
  }
  return false;
}

bool ValueEquals(const Value& a, const Value& b) {
  if (a.index() != b.index()) return false;
  return !ValueLess(a, b) && !ValueLess(b, a);
}

}  // namespace probe::relational
