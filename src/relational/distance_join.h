#ifndef PROBE_RELATIONAL_DISTANCE_JOIN_H_
#define PROBE_RELATIONAL_DISTANCE_JOIN_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "index/zkd_index.h"
#include "util/thread_pool.h"
#include "zorder/grid.h"

/// \file
/// The zones-style distance join DistanceJoin(R, S, r) — the set-at-a-time
/// half of Section 6's proximity story (point-at-a-time k-NN lives in
/// index/nearest.*). Cross-matching two multi-million-point catalogs by
/// Euclidean distance is the astronomy-scale workload of ROADMAP item 3;
/// the algorithm is Gray et al.'s "The Zones Algorithm" mapped onto this
/// repo's machinery:
///
///  1. Bucket both inputs into horizontal *zones* of height ~r
///     (zone = y / h) and stream each side through the external sorter in
///     (zone, x) order — "existing sort utilities" doing the heavy
///     lifting, exactly as Section 4 promises for z values.
///  2. Merge: for each R point, only the S zones within r vertically can
///     hold partners; within each such zone the partners lie in the
///     x-window [x - r, x + r], found by binary search over the zone's
///     sorted x array.
///  3. The per-pair distance test over the window runs through the SIMD
///     in-page filter's CollectWithinDist2 kernel (AVX2 with a
///     bitwise-identical scalar fallback), in exact integer arithmetic.
///
/// With h = r at most three zones are probed per point and the candidate
/// set per probe is bounded by the points in a (2r+1) x 3h window — the
/// "bounded candidates" property that lets the join scale linearly in
/// |R| + |S| + candidate pairs rather than |R| x |S|.
///
/// Distances are exact: a pair is emitted iff dx^2 + dy^2 <= r^2 in
/// integer cell coordinates, computed without overflow at any grid
/// resolution (128-bit accumulation where 64 bits could wrap). Emission
/// order is deterministic — R in its sorted (zone, x, tie-break) order,
/// each probe's partners in S's sorted order — and the parallel path
/// reproduces it bitwise.

namespace probe::relational {

/// One emitted pair of input ids.
struct IdPair {
  uint64_t r_id = 0;
  uint64_t s_id = 0;

  friend bool operator==(const IdPair&, const IdPair&) = default;
};

/// Knobs for DistanceJoin.
struct DistanceJoinOptions {
  /// Zone height in cells; 0 picks max(1, radius) — the Gray et al.
  /// choice, which bounds the probe to at most three neighbor zones.
  uint64_t zone_height = 0;
  /// In-memory buffer of each side's external sort; inputs beyond it
  /// spill sorted runs to a scratch pager.
  size_t sort_budget_entries = 1u << 20;
  /// When set, the zone merge is partitioned over the pool; the output
  /// is bitwise-identical to the serial merge.
  util::ThreadPool* pool = nullptr;
  /// Merge partitions; <= 0 targets one per pool lane.
  int partitions = 0;
};

/// Work counters for one distance join.
struct DistanceJoinStats {
  uint64_t r_rows = 0;
  uint64_t s_rows = 0;
  /// Zone height actually used (after the 0 = auto default).
  uint64_t zone_height = 0;
  /// Non-empty zones built on each side.
  uint64_t r_zones = 0;
  uint64_t s_zones = 0;
  /// Pairs whose distance was actually tested (the summed x-window
  /// widths): the algorithm's real work, bounded by the zone geometry.
  uint64_t candidate_pairs = 0;
  /// Pairs emitted (distance <= radius).
  uint64_t pairs = 0;
  /// External-sort I/O over both sides (pages written + read; 0 when both
  /// sides fit the sort budget in memory).
  uint64_t sort_pages = 0;
  /// Sorted runs spilled over both sides.
  uint64_t sort_runs = 0;
  /// Merge partitions actually executed (1 for the serial merge).
  size_t partitions = 1;
};

/// Streams every pair (p in r, q in s) with |p - q|^2 <= radius^2
/// (Euclidean, integer cell coordinates, inclusive) into `sink`, in the
/// deterministic order described above. `grid` must be 2-dimensional and
/// both sides' points must lie on it; ids must fit in 64 - bits_per_dim
/// bits (checked). `radius` is in cells. `stats` may be null.
void DistanceJoin(std::span<const index::PointRecord> r,
                  std::span<const index::PointRecord> s,
                  const zorder::GridSpec& grid, uint64_t radius,
                  const std::function<void(const IdPair&)>& sink,
                  DistanceJoinStats* stats = nullptr,
                  const DistanceJoinOptions& options = {});

/// DistanceJoin materialized into a vector (tests and small joins; the
/// 5-10M-point cross-match uses the sink form with a counting sink).
std::vector<IdPair> DistanceJoinPairs(std::span<const index::PointRecord> r,
                                      std::span<const index::PointRecord> s,
                                      const zorder::GridSpec& grid,
                                      uint64_t radius,
                                      DistanceJoinStats* stats = nullptr,
                                      const DistanceJoinOptions& options = {});

}  // namespace probe::relational

#endif  // PROBE_RELATIONAL_DISTANCE_JOIN_H_
