#ifndef PROBE_RELATIONAL_HEAP_FILE_H_
#define PROBE_RELATIONAL_HEAP_FILE_H_

#include <cstdint>
#include <optional>

#include "relational/relation.h"
#include "storage/buffer_pool.h"

/// \file
/// Heap files: relations stored on pages.
///
/// The in-memory Relation is fine for intermediate results, but the
/// paper's scenario starts from *stored* relations ("Given two relations,
/// R and S, each storing a set of spatial objects"). A HeapFile serializes
/// tuples onto chained pages through the buffer pool, so scans of the
/// base relations cost page I/O like everything else in the engine.
///
/// Layout per page:
///   bytes 0..1  : tuple count (uint16)
///   bytes 2..3  : used bytes in the payload area (uint16)
///   bytes 4..7  : next page id (kInvalidPageId at the tail)
///   bytes 8..   : tuples, each [uint16 length][serialized values]
/// Tuples never span pages; a tuple larger than a page is rejected.

namespace probe::relational {

/// Serialized size of `tuple` in bytes (without the per-tuple header).
/// Used to check a tuple fits a page.
size_t SerializedTupleSize(const Tuple& tuple);

/// A page-backed bag of tuples with a fixed schema.
class HeapFile {
 public:
  /// Creates an empty heap file. The pool must outlive the file.
  HeapFile(storage::BufferPool* pool, Schema schema);

  HeapFile(HeapFile&&) = default;

  const Schema& schema() const { return schema_; }
  uint64_t tuple_count() const { return tuple_count_; }
  uint32_t page_count() const { return page_count_; }

  /// Appends one tuple; its arity/types must match the schema, and it must
  /// fit a page. Returns false (and stores nothing) if it does not fit.
  bool Append(const Tuple& tuple);

  /// Sequential scan over all tuples in append order.
  class Scanner {
   public:
    explicit Scanner(const HeapFile* file);

    /// Fetches the next tuple; nullopt at the end.
    std::optional<Tuple> Next();

    /// Pages read by this scan so far.
    uint64_t pages_read() const { return pages_read_; }

   private:
    bool LoadPage(storage::PageId id);

    const HeapFile* file_;
    storage::PageId current_page_ = storage::kInvalidPageId;
    storage::PageRef page_ref_;
    int tuple_index_ = 0;
    int tuple_count_ = 0;
    size_t byte_offset_ = 0;
    uint64_t pages_read_ = 0;
  };

  Scanner Scan() const { return Scanner(this); }

  /// Materializes the whole file as an in-memory Relation (convenience for
  /// small relations and tests).
  Relation ToRelation() const;

 private:
  friend class Scanner;

  storage::BufferPool* pool_;
  Schema schema_;
  storage::PageId first_page_ = storage::kInvalidPageId;
  storage::PageId last_page_ = storage::kInvalidPageId;
  uint32_t page_count_ = 0;
  uint64_t tuple_count_ = 0;
};

}  // namespace probe::relational

#endif  // PROBE_RELATIONAL_HEAP_FILE_H_
