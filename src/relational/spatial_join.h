#ifndef PROBE_RELATIONAL_SPATIAL_JOIN_H_
#define PROBE_RELATIONAL_SPATIAL_JOIN_H_

#include <cstdint>
#include <string>

#include "relational/relation.h"

/// \file
/// The spatial join R[zr <> zs]S of Section 4.
///
/// "The implementation strategies of natural join can be used. Instead of
/// looking for equality, we're looking for containment between zr and zs."
/// Both inputs are element relations sorted by their z columns; the join
/// is a single merge pass with one containment stack per side. The stacks
/// exploit the structural theorem of Section 3.2: two elements either
/// nest (one z value is a prefix of the other) or are disjoint, so the set
/// of "open" elements at any merge position forms a chain of prefixes and
/// pops like a stack. An element pairs with exactly the other side's open
/// elements at the moment it is processed — each overlapping pair is
/// emitted exactly once.

namespace probe::relational {

/// Work counters for one spatial join.
struct SpatialJoinStats {
  uint64_t r_rows = 0;
  uint64_t s_rows = 0;
  /// Pairs emitted (overlap evidence; may repeat object-id combinations —
  /// the paper projects the redundancy away afterwards).
  uint64_t pairs = 0;
  /// Maximum nesting depth observed on either stack.
  size_t max_stack_depth = 0;
};

/// Computes R[zr <> zs]S: one output row per pair of input rows whose
/// elements overlap (i.e. one z value is a prefix of the other). The output
/// schema is the concatenation of both input schemas, which must not share
/// column names. Inputs need not be pre-sorted; they are sorted by their z
/// columns internally (stably). `stats` may be null.
Relation SpatialJoin(const Relation& r, const std::string& zr_column,
                     const Relation& s, const std::string& zs_column,
                     SpatialJoinStats* stats = nullptr);

}  // namespace probe::relational

#endif  // PROBE_RELATIONAL_SPATIAL_JOIN_H_
