#ifndef PROBE_RELATIONAL_SPATIAL_JOIN_H_
#define PROBE_RELATIONAL_SPATIAL_JOIN_H_

#include <cstdint>
#include <string>

#include "relational/relation.h"
#include "util/thread_pool.h"

/// \file
/// The spatial join R[zr <> zs]S of Section 4.
///
/// "The implementation strategies of natural join can be used. Instead of
/// looking for equality, we're looking for containment between zr and zs."
/// Both inputs are element relations sorted by their z columns; the join
/// is a single merge pass with one containment stack per side. The stacks
/// exploit the structural theorem of Section 3.2: two elements either
/// nest (one z value is a prefix of the other) or are disjoint, so the set
/// of "open" elements at any merge position forms a chain of prefixes and
/// pops like a stack. An element pairs with exactly the other side's open
/// elements at the moment it is processed — each overlapping pair is
/// emitted exactly once.
///
/// The same chain property makes the merge partitionable: at any merge
/// position where the next z value starts after every previously seen
/// element's range has ended, both stacks are provably empty, so cutting
/// the two sorted inputs there splits the join into independent pieces —
/// no pair crosses such an open-element-free cut. ParallelSpatialJoin
/// finds those cuts and merges the pieces concurrently.

namespace probe::relational {

/// Work counters for one spatial join.
struct SpatialJoinStats {
  uint64_t r_rows = 0;
  uint64_t s_rows = 0;
  /// Pairs emitted (overlap evidence; may repeat object-id combinations —
  /// the paper projects the redundancy away afterwards).
  uint64_t pairs = 0;
  /// Maximum nesting depth observed on either stack.
  size_t max_stack_depth = 0;
  /// Merge partitions actually executed (1 for the serial join; the
  /// parallel join may produce fewer than requested when safe cut points
  /// are scarce).
  size_t partitions = 1;
};

/// Computes R[zr <> zs]S: one output row per pair of input rows whose
/// elements overlap (i.e. one z value is a prefix of the other). The output
/// schema is the concatenation of both input schemas, which must not share
/// column names. Inputs need not be pre-sorted; they are sorted by their z
/// columns internally (stably). `stats` may be null.
Relation SpatialJoin(const Relation& r, const std::string& zr_column,
                     const Relation& s, const std::string& zs_column,
                     SpatialJoinStats* stats = nullptr);

/// SpatialJoin cut at open-element-free z boundaries and merged
/// concurrently on `pool`; the per-partition outputs are concatenated in
/// cut order, so rows come out in exactly the serial join's order.
/// `partitions` <= 0 targets one partition per pool lane; the actual count
/// may be lower (cuts exist only where no element straddles the boundary).
/// `stats` may be null.
Relation ParallelSpatialJoin(const Relation& r, const std::string& zr_column,
                             const Relation& s, const std::string& zs_column,
                             util::ThreadPool& pool, int partitions = 0,
                             SpatialJoinStats* stats = nullptr);

}  // namespace probe::relational

#endif  // PROBE_RELATIONAL_SPATIAL_JOIN_H_
