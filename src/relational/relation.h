#ifndef PROBE_RELATIONAL_RELATION_H_
#define PROBE_RELATIONAL_RELATION_H_

#include <cassert>
#include <string>
#include <vector>

#include "relational/value.h"

/// \file
/// Schemas, tuples, and relations.
///
/// A deliberately small in-memory relational substrate: enough to express
/// the paper's Section 4 scenario — Decompose object relations into
/// element relations, spatial-join them, project out the redundancy — with
/// real operators rather than pseudo-code.

namespace probe::relational {

/// A named, typed column.
struct Column {
  std::string name;
  ValueType type = ValueType::kInt;
};

/// An ordered list of columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  int column_count() const { return static_cast<int>(columns_.size()); }
  const Column& column(int i) const { return columns_[i]; }

  /// Index of the column named `name`, or -1.
  int IndexOf(const std::string& name) const;

  /// True iff no two columns share a name.
  bool NamesUnique() const;

  /// Concatenation of two schemas (used by joins).
  static Schema Concat(const Schema& a, const Schema& b);

 private:
  std::vector<Column> columns_;
};

/// One row: values positionally matching a schema.
using Tuple = std::vector<Value>;

/// An in-memory relation: a schema plus a bag of tuples.
class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  size_t size() const { return rows_.size(); }
  const Tuple& row(size_t i) const { return rows_[i]; }
  const std::vector<Tuple>& rows() const { return rows_; }

  /// Appends a tuple; its arity must match the schema.
  void Add(Tuple tuple) {
    assert(static_cast<int>(tuple.size()) == schema_.column_count());
    rows_.push_back(std::move(tuple));
  }

  /// Pre-sizes the row storage for `rows` tuples (operators that know
  /// their output cardinality — or a bound on it — avoid regrowth).
  void Reserve(size_t rows) { rows_.reserve(rows); }

  /// Sorts rows by the named column (stable).
  void SortBy(const std::string& column_name);

  /// Renders the first `max_rows` rows as an aligned text table.
  std::string ToText(size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<Tuple> rows_;
};

}  // namespace probe::relational

#endif  // PROBE_RELATIONAL_RELATION_H_
