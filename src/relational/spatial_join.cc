#include "relational/spatial_join.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "probe/check.h"
#include "zorder/zvalue.h"

namespace probe::relational {

namespace {

using zorder::ZValue;

// A z-sorted view of one input: row indices ordered by the z column.
std::vector<size_t> SortedOrder(const Relation& rel, int z_col) {
  std::vector<size_t> order(rel.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return ValueLess(rel.row(a)[z_col], rel.row(b)[z_col]);
  });
  return order;
}

const ZValue& ZOf(const Relation& rel, size_t row, int z_col) {
  return std::get<ZValue>(rel.row(row)[z_col]);
}

// The resolved inputs of one join.
struct JoinInputs {
  const Relation& r;
  int zr;
  const Relation& s;
  int zs;
  const std::vector<size_t>& r_order;
  const std::vector<size_t>& s_order;
};

// A contiguous slice of both sorted orders: r_order[i_begin, i_end) and
// s_order[j_begin, j_end).
struct JoinSlice {
  size_t i_begin = 0;
  size_t i_end = 0;
  size_t j_begin = 0;
  size_t j_end = 0;
};

// The containment-stack merge of Section 4 over one slice. `emit` receives
// (r_row, s_row) for every overlapping pair, in the serial join's order.
// Counters accumulate into `stats` (pairs are counted by the caller's
// emit, not here).
template <typename Emit>
void MergeSlice(const JoinInputs& in, const JoinSlice& slice,
                const Emit& emit, SpatialJoinStats* stats) {
  // Stacks of open elements (row indices); each stack is a chain of
  // prefixes by the nesting theorem of Section 3.2.
  std::vector<size_t> r_stack, s_stack;

  // Merge-order invariants: the merge position never moves backwards in z,
  // and each containment stack stays a chain of prefixes top to bottom.
  check::ZMonotone merge_order(/*strict=*/false);
#if PROBE_AUDIT_ENABLED
  auto audit_chain = [&](const Relation& rel, int z_col,
                         const std::vector<size_t>& stack) {
    for (size_t d = 1; d < stack.size(); ++d) {
      PROBE_ASSERT_MSG(
          ZOf(rel, stack[d - 1], z_col).Contains(ZOf(rel, stack[d], z_col)),
          "spatial-join stack is not a prefix chain");
    }
  };
#endif

  size_t i = slice.i_begin;  // position in r_order
  size_t j = slice.j_begin;  // position in s_order
  while (i < slice.i_end || j < slice.j_end) {
    // Take the smaller next z value; ties go to R (either order works —
    // equal z values contain each other, and the pair is emitted when the
    // second of the two is processed.)
    bool take_r;
    if (i >= slice.i_end) {
      take_r = false;
    } else if (j >= slice.j_end) {
      take_r = true;
    } else {
      take_r = !(ZOf(in.s, in.s_order[j], in.zs) <
                 ZOf(in.r, in.r_order[i], in.zr));
    }

    const ZValue& z = take_r ? ZOf(in.r, in.r_order[i], in.zr)
                             : ZOf(in.s, in.s_order[j], in.zs);

    // Close elements whose range ended before z: an open element stays
    // open iff its z value is a prefix of the current one.
    while (!r_stack.empty() &&
           !ZOf(in.r, r_stack.back(), in.zr).Contains(z)) {
      r_stack.pop_back();
    }
    while (!s_stack.empty() &&
           !ZOf(in.s, s_stack.back(), in.zs).Contains(z)) {
      s_stack.pop_back();
    }

    PROBE_AUDIT(
        merge_order.Observe(z.RangeLo(ZValue::kMaxBits), "spatial-join merge"));

    // Every open element of the other side contains z, hence overlaps it.
    if (take_r) {
      for (size_t s_row : s_stack) emit(in.r_order[i], s_row);
      r_stack.push_back(in.r_order[i]);
      PROBE_AUDIT(audit_chain(in.r, in.zr, r_stack));
      ++i;
    } else {
      for (size_t r_row : r_stack) emit(r_row, in.s_order[j]);
      s_stack.push_back(in.s_order[j]);
      PROBE_AUDIT(audit_chain(in.s, in.zs, s_stack));
      ++j;
    }
    if (stats != nullptr) {
      stats->max_stack_depth =
          std::max({stats->max_stack_depth, r_stack.size(), s_stack.size()});
    }
  }
}

// Builds the concatenated output row for a pair. Reserves once and bulk-
// copies each side (the emission path is the join's hot loop).
Tuple CombineRows(const JoinInputs& in, int out_columns, size_t r_row,
                  size_t s_row) {
  Tuple combined;
  combined.reserve(static_cast<size_t>(out_columns));
  const Tuple& a = in.r.row(r_row);
  const Tuple& b = in.s.row(s_row);
  combined.insert(combined.end(), a.begin(), a.end());
  combined.insert(combined.end(), b.begin(), b.end());
  return combined;
}

// Cuts both sorted orders into at most `partitions` slices at open-
// element-free boundaries: positions in the merged z sequence where the
// next element's range starts after every earlier element's range has
// ended. At such a position the serial merge's stacks are empty (nothing
// contains the next z value) and no later element can pair with an earlier
// one, so the slices join independently. Always returns at least one
// slice.
std::vector<JoinSlice> CutSlices(const JoinInputs& in, int partitions) {
  const size_t nr = in.r_order.size();
  const size_t ns = in.s_order.size();
  std::vector<JoinSlice> slices;
  const size_t total = nr + ns;
  if (partitions <= 1 || total == 0) {
    slices.push_back(JoinSlice{0, nr, 0, ns});
    return slices;
  }
  const size_t target =
      std::max<size_t>(1, total / static_cast<size_t>(partitions));

  size_t i = 0, j = 0;
  size_t last_i = 0, last_j = 0;
  // Largest full-resolution z value covered by any element processed so
  // far; the next element cuts iff its range starts beyond it.
  uint64_t max_hi = 0;
  bool any = false;
  while (i < nr || j < ns) {
    bool take_r;
    if (i >= nr) {
      take_r = false;
    } else if (j >= ns) {
      take_r = true;
    } else {
      take_r = !(ZOf(in.s, in.s_order[j], in.zs) <
                 ZOf(in.r, in.r_order[i], in.zr));
    }
    const ZValue& z = take_r ? ZOf(in.r, in.r_order[i], in.zr)
                             : ZOf(in.s, in.s_order[j], in.zs);
    const size_t processed = (i - last_i) + (j - last_j);
    if (any && processed >= target && z.RangeLo(ZValue::kMaxBits) > max_hi) {
      slices.push_back(JoinSlice{last_i, i, last_j, j});
      last_i = i;
      last_j = j;
      if (slices.size() + 1 == static_cast<size_t>(partitions)) break;
    }
    max_hi = std::max(max_hi, z.RangeHi(ZValue::kMaxBits));
    any = true;
    if (take_r) {
      ++i;
    } else {
      ++j;
    }
  }
  slices.push_back(JoinSlice{last_i, nr, last_j, ns});
  return slices;
}

}  // namespace

Relation SpatialJoin(const Relation& r, const std::string& zr_column,
                     const Relation& s, const std::string& zs_column,
                     SpatialJoinStats* stats) {
  const int zr = r.schema().IndexOf(zr_column);
  const int zs = s.schema().IndexOf(zs_column);
  assert(zr >= 0 && zs >= 0);
  assert(r.schema().column(zr).type == ValueType::kZValue);
  assert(s.schema().column(zs).type == ValueType::kZValue);

  const Schema out_schema = Schema::Concat(r.schema(), s.schema());
  assert(out_schema.NamesUnique());
  Relation out(out_schema);
  out.Reserve(std::max(r.size(), s.size()));

  const std::vector<size_t> r_order = SortedOrder(r, zr);
  const std::vector<size_t> s_order = SortedOrder(s, zs);
  const JoinInputs in{r, zr, s, zs, r_order, s_order};
  const int out_columns = out_schema.column_count();

  auto emit = [&](size_t r_row, size_t s_row) {
    out.Add(CombineRows(in, out_columns, r_row, s_row));
    if (stats != nullptr) ++stats->pairs;
  };
  MergeSlice(in, JoinSlice{0, r_order.size(), 0, s_order.size()}, emit,
             stats);

  if (stats != nullptr) {
    stats->r_rows = r.size();
    stats->s_rows = s.size();
    stats->partitions = 1;
  }
  return out;
}

Relation ParallelSpatialJoin(const Relation& r, const std::string& zr_column,
                             const Relation& s, const std::string& zs_column,
                             util::ThreadPool& pool, int partitions,
                             SpatialJoinStats* stats) {
  const int zr = r.schema().IndexOf(zr_column);
  const int zs = s.schema().IndexOf(zs_column);
  assert(zr >= 0 && zs >= 0);
  assert(r.schema().column(zr).type == ValueType::kZValue);
  assert(s.schema().column(zs).type == ValueType::kZValue);

  const Schema out_schema = Schema::Concat(r.schema(), s.schema());
  assert(out_schema.NamesUnique());
  Relation out(out_schema);
  const int out_columns = out_schema.column_count();

  const std::vector<size_t> r_order = SortedOrder(r, zr);
  const std::vector<size_t> s_order = SortedOrder(s, zs);
  const JoinInputs in{r, zr, s, zs, r_order, s_order};

  const int want = partitions > 0 ? partitions : pool.lanes();
  const std::vector<JoinSlice> slices = CutSlices(in, want);

  std::vector<std::vector<Tuple>> partial(slices.size());
  std::vector<SpatialJoinStats> partial_stats(slices.size());
  pool.ParallelFor(slices.size(), [&](size_t k) {
    auto emit = [&](size_t r_row, size_t s_row) {
      partial[k].push_back(CombineRows(in, out_columns, r_row, s_row));
      ++partial_stats[k].pairs;
    };
    MergeSlice(in, slices[k], emit, &partial_stats[k]);
  });

  size_t total_pairs = 0;
  for (const auto& p : partial) total_pairs += p.size();
  out.Reserve(total_pairs);
  for (auto& p : partial) {
    for (Tuple& tuple : p) out.Add(std::move(tuple));
  }

  if (stats != nullptr) {
    stats->r_rows = r.size();
    stats->s_rows = s.size();
    stats->partitions = slices.size();
    for (const SpatialJoinStats& ps : partial_stats) {
      stats->pairs += ps.pairs;
      stats->max_stack_depth =
          std::max(stats->max_stack_depth, ps.max_stack_depth);
    }
  }
  return out;
}

}  // namespace probe::relational
