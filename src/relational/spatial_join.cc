#include "relational/spatial_join.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "zorder/zvalue.h"

namespace probe::relational {

namespace {

using zorder::ZValue;

// A z-sorted view of one input: row indices ordered by the z column.
std::vector<size_t> SortedOrder(const Relation& rel, int z_col) {
  std::vector<size_t> order(rel.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return ValueLess(rel.row(a)[z_col], rel.row(b)[z_col]);
  });
  return order;
}

const ZValue& ZOf(const Relation& rel, size_t row, int z_col) {
  return std::get<ZValue>(rel.row(row)[z_col]);
}

}  // namespace

Relation SpatialJoin(const Relation& r, const std::string& zr_column,
                     const Relation& s, const std::string& zs_column,
                     SpatialJoinStats* stats) {
  const int zr = r.schema().IndexOf(zr_column);
  const int zs = s.schema().IndexOf(zs_column);
  assert(zr >= 0 && zs >= 0);
  assert(r.schema().column(zr).type == ValueType::kZValue);
  assert(s.schema().column(zs).type == ValueType::kZValue);

  const Schema out_schema = Schema::Concat(r.schema(), s.schema());
  assert(out_schema.NamesUnique());
  Relation out(out_schema);

  const std::vector<size_t> r_order = SortedOrder(r, zr);
  const std::vector<size_t> s_order = SortedOrder(s, zs);

  // Stacks of open elements (row indices); each stack is a chain of
  // prefixes by the nesting theorem of Section 3.2.
  std::vector<size_t> r_stack, s_stack;

  auto emit = [&](size_t r_row, size_t s_row) {
    Tuple combined;
    combined.reserve(out_schema.column_count());
    for (const Value& v : r.row(r_row)) combined.push_back(v);
    for (const Value& v : s.row(s_row)) combined.push_back(v);
    out.Add(std::move(combined));
    if (stats != nullptr) ++stats->pairs;
  };

  size_t i = 0;  // position in r_order
  size_t j = 0;  // position in s_order
  while (i < r_order.size() || j < s_order.size()) {
    // Take the smaller next z value; ties go to R (either order works —
    // equal z values contain each other, and the pair is emitted when the
    // second of the two is processed).
    bool take_r;
    if (i >= r_order.size()) {
      take_r = false;
    } else if (j >= s_order.size()) {
      take_r = true;
    } else {
      take_r = !(ZOf(s, s_order[j], zs) < ZOf(r, r_order[i], zr));
    }

    const ZValue& z = take_r ? ZOf(r, r_order[i], zr) : ZOf(s, s_order[j], zs);

    // Close elements whose range ended before z: an open element stays
    // open iff its z value is a prefix of the current one.
    while (!r_stack.empty() && !ZOf(r, r_stack.back(), zr).Contains(z)) {
      r_stack.pop_back();
    }
    while (!s_stack.empty() && !ZOf(s, s_stack.back(), zs).Contains(z)) {
      s_stack.pop_back();
    }

    // Every open element of the other side contains z, hence overlaps it.
    if (take_r) {
      for (size_t s_row : s_stack) emit(r_order[i], s_row);
      r_stack.push_back(r_order[i]);
      ++i;
    } else {
      for (size_t r_row : r_stack) emit(r_row, s_order[j]);
      s_stack.push_back(s_order[j]);
      ++j;
    }
    if (stats != nullptr) {
      stats->max_stack_depth =
          std::max({stats->max_stack_depth, r_stack.size(), s_stack.size()});
    }
  }

  if (stats != nullptr) {
    stats->r_rows = r.size();
    stats->s_rows = s.size();
  }
  return out;
}

}  // namespace probe::relational
