#include "relational/heap_file.h"

#include <cassert>
#include <cstring>

#include "zorder/zvalue.h"

namespace probe::relational {

namespace {

// Page header offsets.
constexpr size_t kCountOffset = 0;    // uint16 tuple count
constexpr size_t kUsedOffset = 2;     // uint16 payload bytes used
constexpr size_t kNextOffset = 4;     // PageId of the next page
constexpr size_t kPayloadOffset = 8;  // tuples start here
constexpr size_t kPayloadCapacity = storage::Page::kSize - kPayloadOffset;

// Value wire format: 1 tag byte + payload.
//   int64 / double : 8 bytes
//   string         : uint16 length + bytes
//   z value        : 8 raw + 1 len
size_t SerializedValueSize(const Value& value) {
  switch (TypeOf(value)) {
    case ValueType::kInt:
    case ValueType::kReal:
      return 1 + 8;
    case ValueType::kString:
      return 1 + 2 + std::get<std::string>(value).size();
    case ValueType::kZValue:
      return 1 + 9;
  }
  return 0;
}

void SerializeValue(const Value& value, uint8_t* out, size_t* offset) {
  out[(*offset)++] = static_cast<uint8_t>(TypeOf(value));
  switch (TypeOf(value)) {
    case ValueType::kInt: {
      const int64_t v = std::get<int64_t>(value);
      std::memcpy(out + *offset, &v, 8);
      *offset += 8;
      break;
    }
    case ValueType::kReal: {
      const double v = std::get<double>(value);
      std::memcpy(out + *offset, &v, 8);
      *offset += 8;
      break;
    }
    case ValueType::kString: {
      const std::string& s = std::get<std::string>(value);
      const uint16_t len = static_cast<uint16_t>(s.size());
      std::memcpy(out + *offset, &len, 2);
      *offset += 2;
      std::memcpy(out + *offset, s.data(), s.size());
      *offset += s.size();
      break;
    }
    case ValueType::kZValue: {
      const zorder::ZValue& z = std::get<zorder::ZValue>(value);
      const uint64_t raw = z.raw();
      const uint8_t len = static_cast<uint8_t>(z.length());
      std::memcpy(out + *offset, &raw, 8);
      *offset += 8;
      out[*offset] = len;
      *offset += 1;
      break;
    }
  }
}

Value DeserializeValue(const uint8_t* in, size_t* offset) {
  const ValueType type = static_cast<ValueType>(in[(*offset)++]);
  switch (type) {
    case ValueType::kInt: {
      int64_t v;
      std::memcpy(&v, in + *offset, 8);
      *offset += 8;
      return Value{v};
    }
    case ValueType::kReal: {
      double v;
      std::memcpy(&v, in + *offset, 8);
      *offset += 8;
      return Value{v};
    }
    case ValueType::kString: {
      uint16_t len;
      std::memcpy(&len, in + *offset, 2);
      *offset += 2;
      std::string s(reinterpret_cast<const char*>(in + *offset), len);
      *offset += len;
      return Value{std::move(s)};
    }
    case ValueType::kZValue: {
      uint64_t raw;
      std::memcpy(&raw, in + *offset, 8);
      *offset += 8;
      const uint8_t len = in[*offset];
      *offset += 1;
      return Value{zorder::ZValue::FromRaw(raw, len)};
    }
  }
  return Value{int64_t{0}};
}

}  // namespace

size_t SerializedTupleSize(const Tuple& tuple) {
  size_t size = 2;  // uint16 tuple length prefix
  for (const Value& v : tuple) size += SerializedValueSize(v);
  return size;
}

HeapFile::HeapFile(storage::BufferPool* pool, Schema schema)
    : pool_(pool), schema_(std::move(schema)) {}

bool HeapFile::Append(const Tuple& tuple) {
  assert(static_cast<int>(tuple.size()) == schema_.column_count());
  const size_t need = SerializedTupleSize(tuple);
  if (need > kPayloadCapacity) return false;

  // Open (or extend) the tail page.
  storage::PageRef ref;
  if (last_page_ == storage::kInvalidPageId) {
    ref = pool_->New(&last_page_);
    first_page_ = last_page_;
    ++page_count_;
    ref.page().Write<uint16_t>(kCountOffset, 0);
    ref.page().Write<uint16_t>(kUsedOffset, 0);
    ref.page().Write<storage::PageId>(kNextOffset, storage::kInvalidPageId);
  } else {
    ref = pool_->Fetch(last_page_);
    const size_t used = ref.page().Read<uint16_t>(kUsedOffset);
    if (used + need > kPayloadCapacity) {
      storage::PageId fresh;
      storage::PageRef fresh_ref = pool_->New(&fresh);
      ++page_count_;
      fresh_ref.page().Write<uint16_t>(kCountOffset, 0);
      fresh_ref.page().Write<uint16_t>(kUsedOffset, 0);
      fresh_ref.page().Write<storage::PageId>(kNextOffset,
                                              storage::kInvalidPageId);
      fresh_ref.MarkDirty();
      ref.page().Write<storage::PageId>(kNextOffset, fresh);
      ref.MarkDirty();
      last_page_ = fresh;
      ref = std::move(fresh_ref);
    }
  }

  storage::Page& page = ref.page();
  const uint16_t count = page.Read<uint16_t>(kCountOffset);
  const uint16_t used = page.Read<uint16_t>(kUsedOffset);
  uint8_t* payload = page.data() + kPayloadOffset + used;
  size_t offset = 0;
  const uint16_t body = static_cast<uint16_t>(need - 2);
  std::memcpy(payload, &body, 2);
  offset = 2;
  for (const Value& v : tuple) SerializeValue(v, payload, &offset);
  assert(offset == need);
  page.Write<uint16_t>(kCountOffset, count + 1);
  page.Write<uint16_t>(kUsedOffset, static_cast<uint16_t>(used + need));
  ref.MarkDirty();
  ++tuple_count_;
  return true;
}

HeapFile::Scanner::Scanner(const HeapFile* file) : file_(file) {
  if (file_->first_page_ != storage::kInvalidPageId) {
    LoadPage(file_->first_page_);
  }
}

bool HeapFile::Scanner::LoadPage(storage::PageId id) {
  page_ref_ = file_->pool_->Fetch(id);
  current_page_ = id;
  ++pages_read_;
  tuple_index_ = 0;
  tuple_count_ = page_ref_.page().Read<uint16_t>(kCountOffset);
  byte_offset_ = 0;
  return tuple_count_ > 0;
}

std::optional<Tuple> HeapFile::Scanner::Next() {
  if (current_page_ == storage::kInvalidPageId) return std::nullopt;
  while (tuple_index_ >= tuple_count_) {
    const storage::PageId next =
        page_ref_.page().Read<storage::PageId>(kNextOffset);
    if (next == storage::kInvalidPageId) {
      current_page_ = storage::kInvalidPageId;
      page_ref_.Release();
      return std::nullopt;
    }
    LoadPage(next);
  }
  const uint8_t* payload = page_ref_.page().data() + kPayloadOffset;
  uint16_t body;
  std::memcpy(&body, payload + byte_offset_, 2);
  size_t offset = byte_offset_ + 2;
  Tuple tuple;
  tuple.reserve(file_->schema_.column_count());
  for (int c = 0; c < file_->schema_.column_count(); ++c) {
    tuple.push_back(DeserializeValue(payload, &offset));
  }
  assert(offset == byte_offset_ + 2 + body);
  byte_offset_ += 2 + static_cast<size_t>(body);
  ++tuple_index_;
  return tuple;
}

Relation HeapFile::ToRelation() const {
  Relation out(schema_);
  Scanner scanner = Scan();
  while (auto tuple = scanner.Next()) out.Add(std::move(*tuple));
  return out;
}

}  // namespace probe::relational
