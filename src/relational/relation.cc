#include "relational/relation.h"

#include <algorithm>
#include <sstream>

#include "util/table.h"

namespace probe::relational {

int Schema::IndexOf(const std::string& name) const {
  for (int i = 0; i < column_count(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return -1;
}

bool Schema::NamesUnique() const {
  for (int i = 0; i < column_count(); ++i) {
    for (int j = i + 1; j < column_count(); ++j) {
      if (columns_[i].name == columns_[j].name) return false;
    }
  }
  return true;
}

Schema Schema::Concat(const Schema& a, const Schema& b) {
  std::vector<Column> columns;
  columns.reserve(a.column_count() + b.column_count());
  for (int i = 0; i < a.column_count(); ++i) columns.push_back(a.column(i));
  for (int i = 0; i < b.column_count(); ++i) columns.push_back(b.column(i));
  return Schema(std::move(columns));
}

void Relation::SortBy(const std::string& column_name) {
  const int col = schema_.IndexOf(column_name);
  assert(col >= 0);
  std::stable_sort(rows_.begin(), rows_.end(),
                   [col](const Tuple& a, const Tuple& b) {
                     return ValueLess(a[col], b[col]);
                   });
}

std::string Relation::ToText(size_t max_rows) const {
  std::vector<std::string> headers;
  for (int i = 0; i < schema_.column_count(); ++i) {
    headers.push_back(schema_.column(i).name);
  }
  util::Table table(std::move(headers));
  const size_t limit = std::min(max_rows, rows_.size());
  for (size_t i = 0; i < limit; ++i) {
    table.AddRow();
    for (const Value& v : rows_[i]) table.Cell(ValueToString(v));
  }
  std::ostringstream out;
  table.Print(out);
  if (limit < rows_.size()) {
    out << "  ... " << (rows_.size() - limit) << " more rows\n";
  }
  return out.str();
}

}  // namespace probe::relational
