#include "relational/distance_join.h"

#include <algorithm>
#include <limits>

#include "btree/external_sort.h"
#include "btree/node.h"
#include "btree/simd_filter.h"
#include "btree/zkey.h"
#include "probe/check.h"
#include "storage/pager.h"

namespace probe::relational {

namespace {

/// One side of the join after zoning and sorting: a CSR layout over the
/// non-empty zones, with parallel coordinate/id arrays in (zone, x,
/// tie-break) order. uint64_t coordinate arrays feed the SIMD kernel
/// directly.
struct ZonedSide {
  std::vector<uint64_t> zone_ids;  // sorted, non-empty zones only
  std::vector<size_t> offsets;     // zone_ids.size() + 1 row offsets
  std::vector<uint64_t> xs;        // sorted ascending within each zone
  std::vector<uint64_t> ys;
  std::vector<uint64_t> ids;

  size_t rows() const { return xs.size(); }
};

/// Streams `points` through the external sorter in (zone, x) order and
/// materializes the CSR side. The sort key packs (zone << d) | x — integer
/// order on the packed key is exactly (zone, x) order because both halves
/// are below 2^d — and the payload packs (id << d) | y so ties in (zone, x)
/// still sort deterministically (by id, then y). `sort` accumulates the
/// spill statistics across both sides.
ZonedSide BuildSide(std::span<const index::PointRecord> points, int d,
                    uint64_t h, size_t budget,
                    btree::ExternalSortStats* sort) {
  const uint64_t mask = (1ULL << d) - 1;  // d <= 32 < 64
  storage::MemPager scratch;
  btree::ExternalSorter sorter(&scratch, budget);
  for (const auto& p : points) {
    const uint64_t x = p.point[0];
    const uint64_t y = p.point[1];
    PROBE_ASSERT_MSG(x <= mask && y <= mask,
                     "distance join point off the grid");
    if (p.id >> (64 - d)) {
      check::AuditFailure(__FILE__, __LINE__, "id < 2^(64 - bits_per_dim)",
                          "distance join id too wide to zone-sort");
    }
    const uint64_t zone = y / h;
    sorter.Add(btree::LeafEntry{
        btree::ZKey{(zone << d) | x, 64},
        (p.id << d) | y,
    });
  }

  ZonedSide side;
  side.xs.reserve(points.size());
  side.ys.reserve(points.size());
  side.ids.reserve(points.size());
  sorter.Drain([&](const btree::LeafEntry& e) {
    const uint64_t zone = e.key.raw >> d;
    if (side.zone_ids.empty() || side.zone_ids.back() != zone) {
      side.zone_ids.push_back(zone);
      side.offsets.push_back(side.xs.size());
    }
    side.xs.push_back(e.key.raw & mask);
    side.ys.push_back(e.payload & mask);
    side.ids.push_back(e.payload >> d);
  });
  side.offsets.push_back(side.xs.size());

  sort->runs += sorter.stats().runs;
  sort->pages_written += sorter.stats().pages_written;
  sort->pages_read += sorter.stats().pages_read;
  sort->records += sorter.stats().records;
  sort->spilled_records += sorter.stats().spilled_records;
  return side;
}

/// Probes rows [begin, end) of `r` against `s`, accumulating into
/// `candidates`/`pairs` and emitting matches — for each R row in CSR
/// order, its partner zones ascending, partners within a zone in the
/// zone's sorted order. Serial execution calls this once over all rows;
/// the parallel path calls it per contiguous chunk, which partitions both
/// the row range and the emission sequence, so replaying chunks in order
/// reproduces the serial output exactly.
void ProbeRows(const ZonedSide& r, size_t begin, size_t end,
               const ZonedSide& s, int d, uint64_t radius, uint64_t h,
               const std::function<void(const IdPair&)>& sink,
               uint64_t* candidates, uint64_t* pairs) {
  const uint64_t side_max = (1ULL << d) - 1;
  // Coordinates below 2^31 keep every squared distance under 2^63, so the
  // 64-bit SIMD kernel is exact and clamping r^2 to int64 max loses
  // nothing; a full 32-bit grid needs the 128-bit scalar test.
  const bool simd_ok = d <= 31;
  const unsigned __int128 r2_wide =
      static_cast<unsigned __int128>(radius) * radius;
  const uint64_t r2_clamped = static_cast<uint64_t>(
      std::min(r2_wide, static_cast<unsigned __int128>(
                            std::numeric_limits<int64_t>::max())));
  constexpr int kChunk = 4096;
  int32_t hits[kChunk];

  for (size_t i = begin; i < end; ++i) {
    const uint64_t qx = r.xs[i];
    const uint64_t qy = r.ys[i];
    const uint64_t rid = r.ids[i];
    const uint64_t zlo = qy > radius ? (qy - radius) / h : 0;
    uint64_t ymax = qy + radius;
    if (ymax < qy || ymax > side_max) ymax = side_max;
    const uint64_t zhi = ymax / h;
    uint64_t xmax = qx + radius;
    if (xmax < qx) xmax = side_max;

    auto zi = std::lower_bound(s.zone_ids.begin(), s.zone_ids.end(), zlo) -
              s.zone_ids.begin();
    for (; static_cast<size_t>(zi) < s.zone_ids.size() &&
           s.zone_ids[static_cast<size_t>(zi)] <= zhi;
         ++zi) {
      const size_t off = s.offsets[static_cast<size_t>(zi)];
      const size_t zone_end = s.offsets[static_cast<size_t>(zi) + 1];
      const auto first = s.xs.begin() + static_cast<ptrdiff_t>(off);
      const auto last = s.xs.begin() + static_cast<ptrdiff_t>(zone_end);
      // The x-window [qx - radius, qx + radius] inside this zone.
      const size_t lo = qx > radius
                            ? static_cast<size_t>(
                                  std::lower_bound(first, last, qx - radius) -
                                  s.xs.begin())
                            : off;
      const size_t hi = static_cast<size_t>(
          std::upper_bound(first + static_cast<ptrdiff_t>(lo - off), last,
                           xmax) -
          s.xs.begin());
      *candidates += hi - lo;

      if (simd_ok) {
        for (size_t pos = lo; pos < hi; pos += kChunk) {
          const int len = static_cast<int>(
              std::min(hi - pos, static_cast<size_t>(kChunk)));
          const int m = btree::CollectWithinDist2(
              s.xs.data() + pos, s.ys.data() + pos, len, qx, qy, r2_clamped,
              hits);
          for (int j = 0; j < m; ++j) {
            ++*pairs;
            sink(IdPair{rid, s.ids[pos + static_cast<size_t>(hits[j])]});
          }
        }
      } else {
        for (size_t pos = lo; pos < hi; ++pos) {
          const uint64_t dx =
              s.xs[pos] > qx ? s.xs[pos] - qx : qx - s.xs[pos];
          const uint64_t dy =
              s.ys[pos] > qy ? s.ys[pos] - qy : qy - s.ys[pos];
          const unsigned __int128 d2 =
              static_cast<unsigned __int128>(dx) * dx +
              static_cast<unsigned __int128>(dy) * dy;
          if (d2 <= r2_wide) {
            ++*pairs;
            sink(IdPair{rid, s.ids[pos]});
          }
        }
      }
    }
  }
}

}  // namespace

void DistanceJoin(std::span<const index::PointRecord> r,
                  std::span<const index::PointRecord> s,
                  const zorder::GridSpec& grid, uint64_t radius,
                  const std::function<void(const IdPair&)>& sink,
                  DistanceJoinStats* stats,
                  const DistanceJoinOptions& options) {
  if (grid.dims != 2 || !grid.Valid()) {
    check::AuditFailure(__FILE__, __LINE__, "grid.dims == 2 && grid.Valid()",
                        "distance join requires a valid 2-d grid");
  }
  const int d = grid.bits_per_dim;
  const uint64_t h =
      options.zone_height != 0 ? options.zone_height
                               : std::max<uint64_t>(1, radius);
  const size_t budget = std::max<size_t>(1, options.sort_budget_entries);

  btree::ExternalSortStats sort;
  const ZonedSide rs = BuildSide(r, d, h, budget, &sort);
  const ZonedSide ss = BuildSide(s, d, h, budget, &sort);

  uint64_t candidates = 0;
  uint64_t pairs = 0;
  size_t partitions = 1;

  const size_t rows = rs.rows();
  int want = options.partitions;
  if (options.pool != nullptr && want <= 0) want = options.pool->lanes();
  if (options.pool != nullptr && want > 1 && rows > 1) {
    // Contiguous chunks of R's sorted order: each chunk's emissions are a
    // contiguous slice of the serial output, so replaying the per-chunk
    // buffers in chunk order is bitwise-identical to the serial join.
    const size_t nchunks =
        std::min(static_cast<size_t>(want), rows);
    const size_t chunk = (rows + nchunks - 1) / nchunks;
    struct ChunkOut {
      std::vector<IdPair> out;
      uint64_t candidates = 0;
      uint64_t pairs = 0;
    };
    std::vector<ChunkOut> results(nchunks);
    options.pool->ParallelFor(nchunks, [&](size_t c) {
      const size_t begin = c * chunk;
      const size_t end = std::min(rows, begin + chunk);
      auto& mine = results[c];
      ProbeRows(
          rs, begin, end, ss, d, radius, h,
          [&mine](const IdPair& p) { mine.out.push_back(p); },
          &mine.candidates, &mine.pairs);
    });
    for (const auto& res : results) {
      candidates += res.candidates;
      pairs += res.pairs;
      for (const auto& p : res.out) sink(p);
    }
    partitions = nchunks;
  } else {
    ProbeRows(rs, 0, rows, ss, d, radius, h, sink, &candidates, &pairs);
  }

  if (stats != nullptr) {
    stats->r_rows = rs.rows();
    stats->s_rows = ss.rows();
    stats->zone_height = h;
    stats->r_zones = rs.zone_ids.size();
    stats->s_zones = ss.zone_ids.size();
    stats->candidate_pairs = candidates;
    stats->pairs = pairs;
    stats->sort_pages = sort.pages_written + sort.pages_read;
    stats->sort_runs = sort.runs;
    stats->partitions = partitions;
  }
}

std::vector<IdPair> DistanceJoinPairs(std::span<const index::PointRecord> r,
                                      std::span<const index::PointRecord> s,
                                      const zorder::GridSpec& grid,
                                      uint64_t radius,
                                      DistanceJoinStats* stats,
                                      const DistanceJoinOptions& options) {
  std::vector<IdPair> out;
  DistanceJoin(
      r, s, grid, radius, [&out](const IdPair& p) { out.push_back(p); },
      stats, options);
  return out;
}

}  // namespace probe::relational
