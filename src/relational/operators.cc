#include "relational/operators.h"

#include <algorithm>
#include <cassert>

namespace probe::relational {

Relation Select(const Relation& input,
                const std::function<bool(const Tuple&)>& predicate) {
  Relation out(input.schema());
  for (const Tuple& row : input.rows()) {
    if (predicate(row)) out.Add(row);
  }
  return out;
}

Relation Project(const Relation& input, std::span<const std::string> columns,
                 bool deduplicate) {
  std::vector<int> indices;
  std::vector<Column> out_columns;
  for (const std::string& name : columns) {
    const int idx = input.schema().IndexOf(name);
    assert(idx >= 0);
    indices.push_back(idx);
    out_columns.push_back(input.schema().column(idx));
  }
  Relation out(Schema(std::move(out_columns)));
  for (const Tuple& row : input.rows()) {
    Tuple projected;
    projected.reserve(indices.size());
    for (int idx : indices) projected.push_back(row[idx]);
    out.Add(std::move(projected));
  }
  if (!deduplicate) return out;

  // Sort-unique over whole tuples.
  std::vector<Tuple> rows = out.rows();
  auto tuple_less = [](const Tuple& a, const Tuple& b) {
    for (size_t i = 0; i < a.size(); ++i) {
      if (ValueLess(a[i], b[i])) return true;
      if (ValueLess(b[i], a[i])) return false;
    }
    return false;
  };
  auto tuple_eq = [](const Tuple& a, const Tuple& b) {
    for (size_t i = 0; i < a.size(); ++i) {
      if (!ValueEquals(a[i], b[i])) return false;
    }
    return true;
  };
  std::sort(rows.begin(), rows.end(), tuple_less);
  rows.erase(std::unique(rows.begin(), rows.end(), tuple_eq), rows.end());
  Relation deduped(out.schema());
  for (Tuple& row : rows) deduped.Add(std::move(row));
  return deduped;
}

Relation RenameColumns(const Relation& input, const std::string& prefix) {
  std::vector<Column> columns;
  for (int i = 0; i < input.schema().column_count(); ++i) {
    Column column = input.schema().column(i);
    column.name = prefix + column.name;
    columns.push_back(std::move(column));
  }
  Relation out{Schema(std::move(columns))};
  for (const Tuple& row : input.rows()) out.Add(row);
  return out;
}

Relation GroupBy(const Relation& input,
                 std::span<const std::string> group_columns,
                 std::span<const AggregateSpec> aggregates) {
  // Resolve columns.
  std::vector<int> group_idx;
  std::vector<Column> out_columns;
  for (const std::string& name : group_columns) {
    const int idx = input.schema().IndexOf(name);
    assert(idx >= 0);
    group_idx.push_back(idx);
    out_columns.push_back(input.schema().column(idx));
  }
  std::vector<int> agg_idx;
  for (const AggregateSpec& spec : aggregates) {
    const int idx = input.schema().IndexOf(spec.column);
    assert(idx >= 0);
    agg_idx.push_back(idx);
    ValueType out_type = input.schema().column(idx).type;
    if (spec.fn == AggregateFn::kCount) out_type = ValueType::kInt;
    assert(spec.fn == AggregateFn::kCount ||
           out_type == ValueType::kInt || out_type == ValueType::kReal);
    out_columns.push_back(Column{spec.as, out_type});
  }
  Relation out{Schema(std::move(out_columns))};

  // Sort row indices by the group key, then fold runs.
  std::vector<size_t> order(input.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  auto key_less = [&](size_t a, size_t b) {
    for (int idx : group_idx) {
      const Value& va = input.row(a)[idx];
      const Value& vb = input.row(b)[idx];
      if (ValueLess(va, vb)) return true;
      if (ValueLess(vb, va)) return false;
    }
    return false;
  };
  auto key_equal = [&](size_t a, size_t b) {
    return !key_less(a, b) && !key_less(b, a);
  };
  std::stable_sort(order.begin(), order.end(), key_less);

  auto numeric = [&](size_t row, int idx) -> double {
    const Value& v = input.row(row)[idx];
    return TypeOf(v) == ValueType::kInt
               ? static_cast<double>(std::get<int64_t>(v))
               : std::get<double>(v);
  };

  size_t start = 0;
  while (start < order.size()) {
    size_t end = start + 1;
    while (end < order.size() && key_equal(order[start], order[end])) ++end;

    Tuple row;
    for (int idx : group_idx) row.push_back(input.row(order[start])[idx]);
    for (size_t a = 0; a < aggregates.size(); ++a) {
      const AggregateSpec& spec = aggregates[a];
      const int idx = agg_idx[a];
      if (spec.fn == AggregateFn::kCount) {
        row.push_back(static_cast<int64_t>(end - start));
        continue;
      }
      double acc = numeric(order[start], idx);
      for (size_t i = start + 1; i < end; ++i) {
        const double v = numeric(order[i], idx);
        switch (spec.fn) {
          case AggregateFn::kSum:
            acc += v;
            break;
          case AggregateFn::kMin:
            acc = std::min(acc, v);
            break;
          case AggregateFn::kMax:
            acc = std::max(acc, v);
            break;
          case AggregateFn::kCount:
            break;
        }
      }
      if (input.schema().column(idx).type == ValueType::kInt) {
        row.push_back(static_cast<int64_t>(acc));
      } else {
        row.push_back(acc);
      }
    }
    out.Add(std::move(row));
    start = end;
  }
  return out;
}

namespace {

// Accumulates one tuple's decomposition counters into the operator total.
void AccumulateDecomposeStats(decompose::DecomposeStats* total,
                              const decompose::DecomposeStats& one) {
  if (total == nullptr) return;
  total->elements += one.elements;
  total->classify_calls += one.classify_calls;
  total->boundary_elements += one.boundary_elements;
}

}  // namespace

Relation DecomposeRelation(const zorder::GridSpec& grid,
                           const Relation& input, const std::string& id_column,
                           const ObjectCatalog& catalog,
                           const std::string& z_column,
                           const decompose::DecomposeOptions& options,
                           decompose::DecomposeStats* stats) {
  const int id_idx = input.schema().IndexOf(id_column);
  assert(id_idx >= 0);
  assert(input.schema().column(id_idx).type == ValueType::kInt);

  std::vector<Column> columns;
  for (int i = 0; i < input.schema().column_count(); ++i) {
    columns.push_back(input.schema().column(i));
  }
  columns.push_back(Column{z_column, ValueType::kZValue});
  Relation out{Schema(std::move(columns))};

  for (const Tuple& row : input.rows()) {
    const uint64_t id = static_cast<uint64_t>(std::get<int64_t>(row[id_idx]));
    const geometry::SpatialObject* object = catalog.Get(id);
    assert(object != nullptr);
    decompose::DecomposeStats one;
    for (const zorder::ZValue& element :
         decompose::Decompose(grid, *object, options, &one)) {
      Tuple extended = row;
      extended.push_back(element);
      out.Add(std::move(extended));
    }
    AccumulateDecomposeStats(stats, one);
  }
  out.SortBy(z_column);
  return out;
}

Relation DecomposeHeapFile(const zorder::GridSpec& grid, const HeapFile& input,
                           const std::string& id_column,
                           const ObjectCatalog& catalog,
                           const std::string& z_column,
                           const decompose::DecomposeOptions& options,
                           uint64_t* pages_read,
                           decompose::DecomposeStats* stats) {
  const int id_idx = input.schema().IndexOf(id_column);
  assert(id_idx >= 0);
  assert(input.schema().column(id_idx).type == ValueType::kInt);

  std::vector<Column> columns;
  for (int i = 0; i < input.schema().column_count(); ++i) {
    columns.push_back(input.schema().column(i));
  }
  columns.push_back(Column{z_column, ValueType::kZValue});
  Relation out{Schema(std::move(columns))};

  HeapFile::Scanner scanner = input.Scan();
  while (auto row = scanner.Next()) {
    const uint64_t id =
        static_cast<uint64_t>(std::get<int64_t>((*row)[id_idx]));
    const geometry::SpatialObject* object = catalog.Get(id);
    assert(object != nullptr);
    decompose::DecomposeStats one;
    for (const zorder::ZValue& element :
         decompose::Decompose(grid, *object, options, &one)) {
      Tuple extended = *row;
      extended.push_back(element);
      out.Add(std::move(extended));
    }
    AccumulateDecomposeStats(stats, one);
  }
  if (pages_read != nullptr) *pages_read = scanner.pages_read();
  out.SortBy(z_column);
  return out;
}

}  // namespace probe::relational
