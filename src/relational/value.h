#ifndef PROBE_RELATIONAL_VALUE_H_
#define PROBE_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "zorder/zvalue.h"

/// \file
/// Attribute values of the mini relational engine.
///
/// Section 4's "one obvious addition is a domain for the element object
/// class": besides the usual integer/real/string domains, a column can
/// hold a z value (an element). The element domain's operators — precedes
/// (z order) and contains (prefix) — are what the spatial join consumes.

namespace probe::relational {

/// Tag of a value's runtime type.
enum class ValueType { kInt, kReal, kString, kZValue };

/// A single attribute value.
using Value = std::variant<int64_t, double, std::string, zorder::ZValue>;

/// Runtime type of `v`.
ValueType TypeOf(const Value& v);

/// Human-readable rendering (z values print as bitstrings).
std::string ValueToString(const Value& v);

/// Total order within a type: integers/reals numerically, strings
/// lexicographically, z values in z order. Comparing different types
/// orders by type tag (deterministic, used only for sorting mixed keys).
bool ValueLess(const Value& a, const Value& b);

/// Equality within a type; values of different types are unequal.
bool ValueEquals(const Value& a, const Value& b);

}  // namespace probe::relational

#endif  // PROBE_RELATIONAL_VALUE_H_
