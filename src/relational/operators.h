#ifndef PROBE_RELATIONAL_OPERATORS_H_
#define PROBE_RELATIONAL_OPERATORS_H_

#include <functional>
#include <span>
#include <string>

#include "decompose/decomposer.h"
#include "relational/catalog.h"
#include "relational/heap_file.h"
#include "relational/relation.h"
#include "zorder/grid.h"

/// \file
/// Relational operators: selection, projection, and the paper's Decompose.
///
/// Section 4's query plan for overlap detection is
///   R(p@, zr, ...) := Decompose(P(p@, ...))
///   RS := R [zr <> zs] S
///   Result := RS[p@, q@, ...]       -- projection removes the redundancy
/// Decompose and Project live here; the spatial join has its own file.

namespace probe::relational {

/// Rows of `input` satisfying `predicate`.
Relation Select(const Relation& input,
                const std::function<bool(const Tuple&)>& predicate);

/// Projection onto the named columns. With `deduplicate`, equal projected
/// rows collapse to one (the paper's step that removes the "noted many
/// times" overlap pairs).
Relation Project(const Relation& input, std::span<const std::string> columns,
                 bool deduplicate);

/// The Decompose operator: for every input tuple, looks up the spatial
/// object named by `id_column` in `catalog`, decomposes it on `grid`, and
/// emits one output tuple per element — the input tuple extended with a
/// z-value column named `z_column` ("the result is a set of sets that must
/// be flattened", Section 4). The output is sorted by the new column so it
/// is ready for a merge join. `stats`, if non-null, accumulates the
/// decomposition counters summed over all input tuples (the executor's
/// EXPLAIN reports them as the operator's actual work).
Relation DecomposeRelation(const zorder::GridSpec& grid,
                           const Relation& input, const std::string& id_column,
                           const ObjectCatalog& catalog,
                           const std::string& z_column,
                           const decompose::DecomposeOptions& options = {},
                           decompose::DecomposeStats* stats = nullptr);

/// A copy of `input` with every column renamed through `prefix` + name.
/// Joins require disjoint column names, so self-joins rename one side:
///   RS := R [zr <> zs] Rename(R, "other_")   -- all overlapping pairs in R.
Relation RenameColumns(const Relation& input, const std::string& prefix);

/// Aggregate functions for GroupBy.
enum class AggregateFn { kCount, kSum, kMin, kMax };

/// One aggregate specification: fn over `column`, emitted as `as`.
/// kCount ignores `column` (pass any existing column name).
struct AggregateSpec {
  AggregateFn fn = AggregateFn::kCount;
  std::string column;
  std::string as;
};

/// Grouping with aggregation: one output row per distinct combination of
/// `group_columns`, extended with the requested aggregates. Sum/min/max
/// require numeric columns (int or real; sums of ints stay ints). Output
/// rows are sorted by the group key. The paper's projection step removes
/// duplicate overlap evidence; GroupBy instead *counts* it — e.g. how many
/// element pairs witness each (parcel, zone) overlap, or total
/// intersection area per pair when joined with per-element areas.
Relation GroupBy(const Relation& input,
                 std::span<const std::string> group_columns,
                 std::span<const AggregateSpec> aggregates);

/// Decompose over a stored relation: scans the heap file through the
/// buffer pool (the paper's "relations storing sets of spatial objects"),
/// decomposing each tuple's object as it streams by. `pages_read`, if
/// non-null, receives the scan's page count.
Relation DecomposeHeapFile(const zorder::GridSpec& grid, const HeapFile& input,
                           const std::string& id_column,
                           const ObjectCatalog& catalog,
                           const std::string& z_column,
                           const decompose::DecomposeOptions& options = {},
                           uint64_t* pages_read = nullptr,
                           decompose::DecomposeStats* stats = nullptr);

}  // namespace probe::relational

#endif  // PROBE_RELATIONAL_OPERATORS_H_
