#include "zorder/curve.h"

#include <cassert>
#include <cstdlib>

#include "zorder/shuffle.h"

namespace probe::zorder {

uint64_t ZRank(const GridSpec& grid, std::span<const uint32_t> coords) {
  return Shuffle(grid, coords).ToInteger();
}

uint64_t ZRank2D(const GridSpec& grid, uint32_t x, uint32_t y) {
  return Shuffle2D(grid, x, y).ToInteger();
}

std::vector<std::vector<uint32_t>> ZCurveWalk(const GridSpec& grid) {
  assert(grid.total_bits() <= 24);
  const uint64_t cells = grid.cell_count();
  std::vector<std::vector<uint32_t>> walk;
  walk.reserve(cells);
  for (uint64_t rank = 0; rank < cells; ++rank) {
    walk.push_back(
        Unshuffle(grid, ZValue::FromInteger(rank, grid.total_bits())));
  }
  return walk;
}

namespace {

// Per-dimension absolute coordinate differences of the two ranks.
std::vector<uint64_t> CoordDeltas(const GridSpec& grid, uint64_t za,
                                  uint64_t zb) {
  const auto ca = Unshuffle(grid, ZValue::FromInteger(za, grid.total_bits()));
  const auto cb = Unshuffle(grid, ZValue::FromInteger(zb, grid.total_bits()));
  std::vector<uint64_t> deltas(grid.dims);
  for (int i = 0; i < grid.dims; ++i) {
    deltas[i] = ca[i] > cb[i] ? ca[i] - cb[i] : cb[i] - ca[i];
  }
  return deltas;
}

}  // namespace

uint64_t ManhattanDistance(const GridSpec& grid, uint64_t za, uint64_t zb) {
  uint64_t sum = 0;
  for (uint64_t d : CoordDeltas(grid, za, zb)) sum += d;
  return sum;
}

uint64_t ChebyshevDistance(const GridSpec& grid, uint64_t za, uint64_t zb) {
  uint64_t best = 0;
  for (uint64_t d : CoordDeltas(grid, za, zb)) best = d > best ? d : best;
  return best;
}

}  // namespace probe::zorder
