#include "zorder/fast_interleave.h"

#include <cassert>

#include "probe/check.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define PROBE_HAVE_BMI2_TARGET 1
#include <immintrin.h>
#else
#define PROBE_HAVE_BMI2_TARGET 0
#endif

namespace probe::zorder {

namespace {

// Bit masks of the alternating schedules: dimension 0 owns the higher bit
// of each group.
constexpr uint64_t kEven2 = 0x5555555555555555ULL;  // positions 0, 2, 4, …
constexpr uint64_t kEvery3 = 0x1249249249249249ULL;  // positions 0, 3, 6, …

#if PROBE_HAVE_BMI2_TARGET
bool DetectBmi2() { return __builtin_cpu_supports("bmi2"); }
#else
bool DetectBmi2() { return false; }
#endif

const bool g_has_bmi2 = DetectBmi2();

}  // namespace

bool HasBmi2() { return g_has_bmi2; }

uint64_t SpreadBits2Portable(uint32_t x) {
  uint64_t v = x;
  v = (v | (v << 16)) & 0x0000FFFF0000FFFFULL;
  v = (v | (v << 8)) & 0x00FF00FF00FF00FFULL;
  v = (v | (v << 4)) & 0x0F0F0F0F0F0F0F0FULL;
  v = (v | (v << 2)) & 0x3333333333333333ULL;
  v = (v | (v << 1)) & 0x5555555555555555ULL;
  return v;
}

uint32_t GatherBits2Portable(uint64_t x) {
  uint64_t v = x & 0x5555555555555555ULL;
  v = (v | (v >> 1)) & 0x3333333333333333ULL;
  v = (v | (v >> 2)) & 0x0F0F0F0F0F0F0F0FULL;
  v = (v | (v >> 4)) & 0x00FF00FF00FF00FFULL;
  v = (v | (v >> 8)) & 0x0000FFFF0000FFFFULL;
  v = (v | (v >> 16)) & 0x00000000FFFFFFFFULL;
  return static_cast<uint32_t>(v);
}

uint64_t SpreadBits3Portable(uint32_t x) {
  uint64_t v = x & 0x1FFFFF;  // 21 bits
  v = (v | (v << 32)) & 0x001F00000000FFFFULL;
  v = (v | (v << 16)) & 0x001F0000FF0000FFULL;
  v = (v | (v << 8)) & 0x100F00F00F00F00FULL;
  v = (v | (v << 4)) & 0x10C30C30C30C30C3ULL;
  v = (v | (v << 2)) & 0x1249249249249249ULL;
  return v;
}

uint32_t GatherBits3Portable(uint64_t x) {
  uint64_t v = x & 0x1249249249249249ULL;
  v = (v | (v >> 2)) & 0x10C30C30C30C30C3ULL;
  v = (v | (v >> 4)) & 0x100F00F00F00F00FULL;
  v = (v | (v >> 8)) & 0x001F0000FF0000FFULL;
  v = (v | (v >> 16)) & 0x001F00000000FFFFULL;
  v = (v | (v >> 32)) & 0x00000000001FFFFFULL;
  return static_cast<uint32_t>(v);
}

#if PROBE_HAVE_BMI2_TARGET

__attribute__((target("bmi2"))) uint64_t SpreadBits2Bmi2(uint32_t x) {
  return _pdep_u64(x, kEven2);
}

__attribute__((target("bmi2"))) uint32_t GatherBits2Bmi2(uint64_t x) {
  return static_cast<uint32_t>(_pext_u64(x, kEven2));
}

__attribute__((target("bmi2"))) uint64_t SpreadBits3Bmi2(uint32_t x) {
  return _pdep_u64(x & 0x1FFFFF, kEvery3);
}

__attribute__((target("bmi2"))) uint32_t GatherBits3Bmi2(uint64_t x) {
  return static_cast<uint32_t>(_pext_u64(x, kEvery3));
}

#else  // !PROBE_HAVE_BMI2_TARGET — keep the symbols linkable everywhere.

uint64_t SpreadBits2Bmi2(uint32_t x) { return SpreadBits2Portable(x); }
uint32_t GatherBits2Bmi2(uint64_t x) { return GatherBits2Portable(x); }
uint64_t SpreadBits3Bmi2(uint32_t x) { return SpreadBits3Portable(x); }
uint32_t GatherBits3Bmi2(uint64_t x) { return GatherBits3Portable(x); }

#endif  // PROBE_HAVE_BMI2_TARGET

uint64_t SpreadBits2(uint32_t x) {
  return g_has_bmi2 ? SpreadBits2Bmi2(x) : SpreadBits2Portable(x);
}

uint32_t GatherBits2(uint64_t x) {
  return g_has_bmi2 ? GatherBits2Bmi2(x) : GatherBits2Portable(x);
}

uint64_t SpreadBits3(uint32_t x) {
  return g_has_bmi2 ? SpreadBits3Bmi2(x) : SpreadBits3Portable(x);
}

uint32_t GatherBits3(uint64_t x) {
  return g_has_bmi2 ? GatherBits3Bmi2(x) : GatherBits3Portable(x);
}

uint64_t MortonEncode2(uint32_t x, uint32_t y, int bits) {
  assert(bits >= 1 && bits <= 32);
  // Coordinates must fit the grid; stray high bits would interleave into
  // positions a `bits`-bit z value does not own. (Widened to 64 bits so the
  // shift is defined at bits == 32.)
  PROBE_ASSERT_MSG((static_cast<uint64_t>(x) >> bits) == 0,
                   "x coordinate wider than the grid");
  PROBE_ASSERT_MSG((static_cast<uint64_t>(y) >> bits) == 0,
                   "y coordinate wider than the grid");
  // The alternating schedule starting with x gives x the *higher* bit of
  // each (x, y) pair.
  (void)bits;
  return (SpreadBits2(x) << 1) | SpreadBits2(y);
}

void MortonDecode2(uint64_t z, int bits, uint32_t* x, uint32_t* y) {
  assert(bits >= 1 && bits <= 32);
  (void)bits;
  *x = GatherBits2(z >> 1);
  *y = GatherBits2(z);
}

uint64_t MortonEncode3(uint32_t x, uint32_t y, uint32_t w, int bits) {
  assert(bits >= 1 && bits <= 21);
  PROBE_ASSERT_MSG((static_cast<uint64_t>(x) >> bits) == 0,
                   "x coordinate wider than the grid");
  PROBE_ASSERT_MSG((static_cast<uint64_t>(y) >> bits) == 0,
                   "y coordinate wider than the grid");
  PROBE_ASSERT_MSG((static_cast<uint64_t>(w) >> bits) == 0,
                   "w coordinate wider than the grid");
  (void)bits;
  return (SpreadBits3(x) << 2) | (SpreadBits3(y) << 1) | SpreadBits3(w);
}

void MortonDecode3(uint64_t z, int bits, uint32_t* x, uint32_t* y,
                   uint32_t* w) {
  assert(bits >= 1 && bits <= 21);
  (void)bits;
  *x = GatherBits3(z >> 2);
  *y = GatherBits3(z >> 1);
  *w = GatherBits3(z);
}

}  // namespace probe::zorder
