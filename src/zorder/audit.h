#ifndef PROBE_ZORDER_AUDIT_H_
#define PROBE_ZORDER_AUDIT_H_

#include <cstdint>
#include <span>

#include "zorder/grid.h"
#include "zorder/zvalue.h"

/// \file
/// Auditors for the z-value algebra (Sections 2-3 of the paper).
///
/// These functions abort (via probe::check::AuditFailure) when an invariant
/// is violated; they return normally otherwise. They are compiled in every
/// configuration so tests and fuzz drivers can call them directly; hot-path
/// call sites wrap them in PROBE_AUDIT so Release builds pay nothing.

namespace probe::zorder {

/// The two laws of Section 2/3.2 for a pair of z values:
///  * containment is exactly the prefix relation (checked bit by bit,
///    independently of ZValue::Contains' masked compare);
///  * two z values either nest or name disjoint z intervals — overlap
///    without containment cannot occur — and the interval order matches
///    operator<=>.
void AuditZOrderLaws(const ZValue& a, const ZValue& b);

/// A decomposition output: `elements` must be strictly ascending in z
/// order, pairwise disjoint as z intervals, and each no longer than the
/// grid's full resolution. `expected_cells` >= 0 additionally requires the
/// union of the intervals to cover exactly that many grid cells (the
/// disjoint-cover law of Section 3); pass -1 to skip. `max_elements` > 0
/// bounds the element count (the Section 5.1 budget); pass 0 to skip.
void AuditElementCover(const GridSpec& grid, std::span<const ZValue> elements,
                       int64_t expected_cells, uint64_t max_elements);

/// One BIGMIN/LITMAX step. For BigMin (`is_bigmin` true): a `found` result
/// must lie inside the box [zmin, zmax] (bitwise, per dimension) and be
/// strictly greater than `zcur`. For LitMax: inside the box and strictly
/// less than `zcur`. A swapped or corrupted bound fails the in-box check.
void AuditBigMinResult(const GridSpec& grid, uint64_t zcur, uint64_t zmin,
                       uint64_t zmax, bool found, uint64_t out,
                       bool is_bigmin);

}  // namespace probe::zorder

#endif  // PROBE_ZORDER_AUDIT_H_
