#ifndef PROBE_ZORDER_CURVE_H_
#define PROBE_ZORDER_CURVE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "zorder/grid.h"

/// \file
/// The z curve itself (Figure 4): rank computation and enumeration.
///
/// "The rank of a point is obtained by interleaving the bits of the
/// coordinates and interpreting as an integer" — e.g. on an 8x8 grid,
/// [3, 5] -> (011, 101) -> 011011 = 27. These helpers exist mainly for the
/// figure benches and the proximity experiments of Section 5.2.

namespace probe::zorder {

/// Rank of the cell at `coords` along the z curve (the interleaved integer).
uint64_t ZRank(const GridSpec& grid, std::span<const uint32_t> coords);

/// 2-d convenience overload.
uint64_t ZRank2D(const GridSpec& grid, uint32_t x, uint32_t y);

/// All cells of the grid in z order (rank 0, 1, 2, ...). Intended for small
/// demonstration grids; requires grid.total_bits() <= 24.
std::vector<std::vector<uint32_t>> ZCurveWalk(const GridSpec& grid);

/// L1 (Manhattan) distance between the cells with ranks `za` and `zb`.
uint64_t ManhattanDistance(const GridSpec& grid, uint64_t za, uint64_t zb);

/// Chebyshev (max-coordinate) distance between the cells with the given
/// ranks. Used by the Section 5.2 proximity experiment: proximity in space
/// "in any direction" corresponds (usually) to proximity in z order.
uint64_t ChebyshevDistance(const GridSpec& grid, uint64_t za, uint64_t zb);

}  // namespace probe::zorder

#endif  // PROBE_ZORDER_CURVE_H_
