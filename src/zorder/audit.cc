#include "zorder/audit.h"

#include "probe/check.h"
#include "zorder/bigmin.h"

namespace probe::zorder {

namespace {

// Prefix relation computed the slow, obviously-correct way: bit by bit.
bool IsPrefixBitwise(const ZValue& p, const ZValue& x) {
  if (p.length() > x.length()) return false;
  for (int i = 0; i < p.length(); ++i) {
    if (p.BitAt(i) != x.BitAt(i)) return false;
  }
  return true;
}

}  // namespace

void AuditZOrderLaws(const ZValue& a, const ZValue& b) {
  // Containment == prefix, both directions, against the bitwise oracle.
  if (a.Contains(b) != IsPrefixBitwise(a, b)) {
    check::AuditFailure(__FILE__, __LINE__,
                        "Contains(a,b) == prefix(a,b)", "z containment law");
  }
  if (b.Contains(a) != IsPrefixBitwise(b, a)) {
    check::AuditFailure(__FILE__, __LINE__,
                        "Contains(b,a) == prefix(b,a)", "z containment law");
  }

  // Nest-or-disjoint: the z intervals [RangeLo, RangeHi] of two z values
  // either nest (exactly when one contains the other) or do not touch.
  const int total = ZValue::kMaxBits;
  const uint64_t alo = a.RangeLo(total), ahi = a.RangeHi(total);
  const uint64_t blo = b.RangeLo(total), bhi = b.RangeHi(total);
  const bool nested = a.Contains(b) || b.Contains(a);
  const bool overlap = alo <= bhi && blo <= ahi;
  if (nested != overlap) {
    check::AuditFailure(__FILE__, __LINE__, "nest-or-disjoint",
                        "z intervals overlap without containment");
  }

  // Order law: for disjoint values, operator<=> agrees with interval order.
  if (!nested) {
    const bool less = a < b;
    if (less != (ahi < blo)) {
      check::AuditFailure(__FILE__, __LINE__, "order == interval order",
                          "z precedence law");
    }
  }
}

void AuditElementCover(const GridSpec& grid, std::span<const ZValue> elements,
                       int64_t expected_cells, uint64_t max_elements) {
  const int total = grid.total_bits();
  uint64_t covered = 0;
  bool have_prev = false;
  uint64_t prev_hi = 0;
  for (const ZValue& z : elements) {
    if (z.length() > total) {
      check::AuditFailure(__FILE__, __LINE__, "length <= total_bits",
                          "element deeper than the grid's resolution");
    }
    const uint64_t lo = z.RangeLo(total);
    const uint64_t hi = z.RangeHi(total);
    if (have_prev && lo <= prev_hi) {
      check::AuditFailure(__FILE__, __LINE__, "lo > prev_hi",
                          "element cover not disjoint/sorted in z order");
    }
    have_prev = true;
    prev_hi = hi;
    covered += hi - lo + 1;
  }
  if (expected_cells >= 0 &&
      covered != static_cast<uint64_t>(expected_cells)) {
    check::AuditFailure(__FILE__, __LINE__, "covered == expected_cells",
                        "element cover volume mismatch");
  }
  if (max_elements > 0 && elements.size() > max_elements) {
    check::AuditFailure(__FILE__, __LINE__, "count <= max_elements",
                        "element count exceeds the Section 5.1 budget");
  }
}

void AuditBigMinResult(const GridSpec& grid, uint64_t zcur, uint64_t zmin,
                       uint64_t zmax, bool found, uint64_t out,
                       bool is_bigmin) {
  if (!found) return;
  if (!InBox(grid, out, zmin, zmax)) {
    check::AuditFailure(__FILE__, __LINE__, "InBox(out)",
                        is_bigmin ? "BIGMIN result outside the query box"
                                  : "LITMAX result outside the query box");
  }
  if (is_bigmin ? out <= zcur : out >= zcur) {
    check::AuditFailure(__FILE__, __LINE__,
                        is_bigmin ? "out > zcur" : "out < zcur",
                        "BIGMIN/LITMAX did not move past the cursor");
  }
}

}  // namespace probe::zorder
