#ifndef PROBE_ZORDER_GRID_H_
#define PROBE_ZORDER_GRID_H_

#include <array>
#include <cstdint>
#include <span>

/// \file
/// Description of the kd grid that z values live on.
///
/// Section 3.1 assumes a grid of resolution 2^d x 2^d and a splitting
/// policy that alternates direction, consuming one coordinate bit per
/// split starting with x. A GridSpec captures the dimensionality k and the
/// per-dimension bit count d; everything else in the library is expressed
/// against it. The paper presents 2-d but notes all ideas extend to any
/// dimension; we support 1 <= k <= 8 with k*d <= 64.
///
/// The *split schedule* — which dimension each successive split consumes —
/// defaults to the paper's strict alternation (bit j goes to dimension
/// j mod k), but can be overridden. That is the unification lever of the
/// paper's first contribution: published structures fall out as schedule
/// choices. All-of-x-then-all-of-y yields the conventional composite-key
/// B-tree ordering; a-few-of-x-then-alternate yields the "brick wall"
/// patterns of [LIOU77, SCHE82, ROBI81]; strict alternation is z order.
/// Every algorithm in the library (shuffle, decomposition, merge, search)
/// is schedule-generic — only the bit bookkeeping changes.

namespace probe::zorder {

/// The grid a z value addresses: k dimensions of d bits each, split in a
/// configurable order.
struct GridSpec {
  /// Dimensionality k of the space.
  int dims = 2;

  /// Bits per dimension d; the grid has side length 2^d cells.
  int bits_per_dim = 8;

  /// When true, `split_dims[j]` names the dimension consumed by split j;
  /// when false the schedule is the paper's alternation (j mod dims).
  /// Prefer GridSpec::WithSchedule over setting these directly.
  bool has_custom_schedule = false;
  std::array<int8_t, 64> split_dims{};

  /// Builds a spec with an explicit split schedule. `schedule` must have
  /// dims*bits_per_dim entries and mention each dimension exactly
  /// bits_per_dim times.
  static GridSpec WithSchedule(int dims, int bits_per_dim,
                               std::span<const int> schedule) {
    GridSpec grid;
    grid.dims = dims;
    grid.bits_per_dim = bits_per_dim;
    grid.has_custom_schedule = true;
    for (size_t j = 0; j < schedule.size() && j < grid.split_dims.size();
         ++j) {
      grid.split_dims[j] = static_cast<int8_t>(schedule[j]);
    }
    return grid;
  }

  /// The composite-key ("all bits of dimension 0, then dimension 1, ...")
  /// schedule: the conventional multi-attribute B-tree index order.
  static GridSpec Composite(int dims, int bits_per_dim) {
    GridSpec grid;
    grid.dims = dims;
    grid.bits_per_dim = bits_per_dim;
    grid.has_custom_schedule = true;
    int j = 0;
    for (int dim = 0; dim < dims; ++dim) {
      for (int b = 0; b < bits_per_dim; ++b) {
        grid.split_dims[j++] = static_cast<int8_t>(dim);
      }
    }
    return grid;
  }

  /// Total bits of a full-resolution (single-pixel) z value.
  int total_bits() const { return dims * bits_per_dim; }

  /// Cells per side, 2^d. The 1-d 64-bit grid's side (2^64) is not
  /// representable and yields 0; the branch keeps the shift defined.
  uint64_t side() const {
    return bits_per_dim >= 64 ? 0 : 1ULL << bits_per_dim;
  }

  /// Total number of cells in the grid, 2^(k*d). Requires total_bits() < 64
  /// to be representable; a full 64-bit grid yields 0 (defined, not UB).
  uint64_t cell_count() const {
    return total_bits() >= 64 ? 0 : 1ULL << total_bits();
  }

  /// Dimension consumed by split `level` (0-based).
  int SplitDimAt(int level) const {
    return has_custom_schedule ? split_dims[static_cast<size_t>(level)]
                               : level % dims;
  }

  /// True iff the spec fits the library's limits (and, for custom
  /// schedules, each dimension is split exactly bits_per_dim times).
  bool Valid() const {
    if (dims < 1 || dims > 8 || bits_per_dim < 1 ||
        dims * bits_per_dim > 64) {
      return false;
    }
    if (has_custom_schedule) {
      int counts[8] = {};
      for (int j = 0; j < total_bits(); ++j) {
        const int dim = split_dims[static_cast<size_t>(j)];
        if (dim < 0 || dim >= dims) return false;
        ++counts[dim];
      }
      for (int dim = 0; dim < dims; ++dim) {
        if (counts[dim] != bits_per_dim) return false;
      }
    }
    return true;
  }

  /// Number of bits of dimension `dim` consumed by a z value of `length`
  /// bits under this spec's schedule.
  int BitsConsumed(int length, int dim) const {
    if (!has_custom_schedule) {
      return length / dims + (dim < length % dims ? 1 : 0);
    }
    int count = 0;
    for (int j = 0; j < length; ++j) {
      if (split_dims[static_cast<size_t>(j)] == dim) ++count;
    }
    return count;
  }

  friend bool operator==(const GridSpec&, const GridSpec&) = default;
};

}  // namespace probe::zorder

#endif  // PROBE_ZORDER_GRID_H_
