#include "zorder/shuffle.h"

#include <cassert>

#include "util/bits.h"
#include "zorder/fast_interleave.h"

namespace probe::zorder {

ZValue Shuffle(const GridSpec& grid, std::span<const uint32_t> coords) {
  assert(grid.Valid());
  assert(coords.size() == static_cast<size_t>(grid.dims));
  // Hot path: full-resolution shuffle under the default alternating
  // schedule is a plain Morton encode.
  if (!grid.has_custom_schedule) {
    if (grid.dims == 2) {
      assert(coords[0] < grid.side() && coords[1] < grid.side());
      return ZValue::FromInteger(
          MortonEncode2(coords[0], coords[1], grid.bits_per_dim),
          grid.total_bits());
    }
    if (grid.dims == 3) {
      assert(coords[0] < grid.side() && coords[1] < grid.side() &&
             coords[2] < grid.side());
      return ZValue::FromInteger(
          MortonEncode3(coords[0], coords[1], coords[2], grid.bits_per_dim),
          grid.total_bits());
    }
  }
  const int d = grid.bits_per_dim;
  uint64_t raw = 0;
  int consumed[8] = {};  // bits of each dimension already interleaved
  for (int j = 0; j < grid.total_bits(); ++j) {
    const int dim = grid.SplitDimAt(j);
    const int coord_bit = d - 1 - consumed[dim]++;  // MSB of the dim first
    assert(coords[dim] < grid.side());
    const uint64_t bit = (coords[dim] >> coord_bit) & 1;
    raw |= bit << (ZValue::kMaxBits - 1 - j);
  }
  return ZValue::FromRaw(raw, grid.total_bits());
}

ZValue Shuffle2D(const GridSpec& grid, uint32_t x, uint32_t y) {
  assert(grid.dims == 2);
  const uint32_t coords[2] = {x, y};
  return Shuffle(grid, coords);
}

std::vector<uint32_t> Unshuffle(const GridSpec& grid, const ZValue& z) {
  assert(z.length() == grid.total_bits());
  if (!grid.has_custom_schedule) {
    if (grid.dims == 2) {
      std::vector<uint32_t> coords(2);
      MortonDecode2(z.ToInteger(), grid.bits_per_dim, &coords[0], &coords[1]);
      return coords;
    }
    if (grid.dims == 3) {
      std::vector<uint32_t> coords(3);
      MortonDecode3(z.ToInteger(), grid.bits_per_dim, &coords[0], &coords[1],
                    &coords[2]);
      return coords;
    }
  }
  std::vector<uint32_t> coords(grid.dims, 0);
  for (int j = 0; j < z.length(); ++j) {
    const int dim = grid.SplitDimAt(j);
    coords[dim] = (coords[dim] << 1) | static_cast<uint32_t>(z.BitAt(j));
  }
  return coords;
}

std::vector<DimRange> UnshuffleRegion(const GridSpec& grid, const ZValue& z) {
  assert(grid.Valid());
  assert(z.length() <= grid.total_bits());
  const int d = grid.bits_per_dim;
  std::vector<uint32_t> prefix(grid.dims, 0);
  for (int j = 0; j < z.length(); ++j) {
    const int dim = grid.SplitDimAt(j);
    prefix[dim] = (prefix[dim] << 1) | static_cast<uint32_t>(z.BitAt(j));
  }
  std::vector<DimRange> ranges(grid.dims);
  for (int dim = 0; dim < grid.dims; ++dim) {
    const int consumed = grid.BitsConsumed(z.length(), dim);
    const int free_bits = d - consumed;
    ranges[dim].lo = prefix[dim] << free_bits;
    ranges[dim].hi =
        ranges[dim].lo | static_cast<uint32_t>(util::LowMask(free_bits));
  }
  return ranges;
}

bool IsElementRegion(const GridSpec& grid,
                     std::span<const DimRange> ranges) {
  if (ranges.size() != static_cast<size_t>(grid.dims)) return false;
  const int d = grid.bits_per_dim;
  int total = 0;
  std::vector<int> consumed(grid.dims);
  for (int dim = 0; dim < grid.dims; ++dim) {
    const DimRange& r = ranges[dim];
    if (r.hi < r.lo || r.hi >= grid.side()) return false;
    const uint64_t width = r.width();
    if (!util::IsPowerOfTwo(width)) return false;
    if (r.lo % width != 0) return false;  // must be an aligned block
    consumed[dim] = d - util::FloorLog2(width);
    total += consumed[dim];
  }
  // The alternating split order fixes how many bits each dimension has
  // consumed at a given total length; the region is an element only if the
  // per-dimension counts match that schedule.
  for (int dim = 0; dim < grid.dims; ++dim) {
    if (grid.BitsConsumed(total, dim) != consumed[dim]) return false;
  }
  return true;
}

ZValue ShuffleRegion(const GridSpec& grid, std::span<const DimRange> ranges) {
  assert(IsElementRegion(grid, ranges));
  const int d = grid.bits_per_dim;
  int total = 0;
  for (int dim = 0; dim < grid.dims; ++dim) {
    total += d - util::FloorLog2(ranges[dim].width());
  }
  uint64_t raw = 0;
  int consumed[8] = {};
  for (int j = 0; j < total; ++j) {
    const int dim = grid.SplitDimAt(j);
    const int coord_bit = d - 1 - consumed[dim]++;
    const uint64_t bit = (ranges[dim].lo >> coord_bit) & 1;
    raw |= bit << (ZValue::kMaxBits - 1 - j);
  }
  return ZValue::FromRaw(raw, total);
}

}  // namespace probe::zorder
