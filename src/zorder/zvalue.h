#ifndef PROBE_ZORDER_ZVALUE_H_
#define PROBE_ZORDER_ZVALUE_H_

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

/// \file
/// The `element` object class of Section 4 of the paper.
///
/// A z value is a variable-length bitstring naming a region of the grid
/// produced by recursive alternating binary splits (Section 3.1). The only
/// possible relationships between two z values are *containment* (one is a
/// prefix of the other) and *precedence* in z order (lexicographic order of
/// the bitstrings) — overlap other than containment cannot occur
/// (Section 3.2). Those two predicates, plus shuffle/unshuffle/decompose,
/// are the entire interface the paper requires of a DBMS.

namespace probe::zorder {

/// A z value: a bitstring of up to 64 significant bits.
///
/// Representation: the bits are stored *left-justified* in a 64-bit word
/// (bit 0 of the string is the most significant bit of the word) with all
/// unused low-order bits zero. Under that invariant, lexicographic order of
/// bitstrings is exactly (word, length) order: differing words compare as
/// integers, and when the words are equal the shorter string is a proper
/// prefix and precedes. This makes z-order comparison a single integer
/// compare, which is the paper's point about reusing existing sort
/// utilities and B-trees.
class ZValue {
 public:
  /// Maximum number of significant bits a ZValue can carry.
  static constexpr int kMaxBits = 64;

  /// The empty bitstring: the whole space.
  constexpr ZValue() : bits_(0), length_(0) {}

  /// Builds a z value from a left-justified word. Bits past `length` must
  /// be zero; they are masked off defensively.
  static ZValue FromRaw(uint64_t left_justified_bits, int length);

  /// Builds a z value of `length` bits from a right-justified integer whose
  /// low `length` bits are the bitstring (e.g. FromInteger(0b001, 3)).
  static ZValue FromInteger(uint64_t value, int length);

  /// Parses a string of '0'/'1' characters; nullopt on any other character
  /// or on length > kMaxBits.
  static std::optional<ZValue> Parse(std::string_view text);

  /// Number of significant bits.
  int length() const { return length_; }

  /// True for the empty bitstring (the whole space).
  bool IsEmpty() const { return length_ == 0; }

  /// Left-justified bit word.
  uint64_t raw() const { return bits_; }

  /// The bitstring interpreted as a right-justified integer.
  uint64_t ToInteger() const;

  /// Bit at position `i` (0 = first/most significant). Requires
  /// 0 <= i < length().
  int BitAt(int i) const;

  /// This z value with `bit` (0 or 1) appended. Requires length() < kMaxBits.
  ZValue Child(int bit) const;

  /// This z value with the last bit removed. Requires length() > 0.
  ZValue Parent() const;

  /// The first `new_length` bits. Requires 0 <= new_length <= length().
  ZValue Prefix(int new_length) const;

  /// Containment test of Section 4: e1 contains e2 iff z(e1) is a prefix of
  /// z(e2). Every z value contains itself.
  bool Contains(const ZValue& other) const;

  /// The smallest full-resolution z value inside this region: the bitstring
  /// padded with 0s to `total_bits`. This is `zlo` of the range-search
  /// algorithm (Section 3.3). Requires length() <= total_bits <= 64.
  uint64_t RangeLo(int total_bits) const;

  /// The largest full-resolution z value inside this region (padding
  /// with 1s): `zhi` of Section 3.3.
  uint64_t RangeHi(int total_bits) const;

  /// Renders as a string of '0'/'1', e.g. "001".
  std::string ToString() const;

  /// Lexicographic (z-order) comparison; `precedes` of Section 4.
  friend std::strong_ordering operator<=>(const ZValue& a, const ZValue& b) {
    if (a.bits_ != b.bits_) return a.bits_ <=> b.bits_;
    return a.length_ <=> b.length_;
  }
  friend bool operator==(const ZValue& a, const ZValue& b) = default;

 private:
  constexpr ZValue(uint64_t bits, int length)
      : bits_(bits), length_(static_cast<uint8_t>(length)) {}

  uint64_t bits_;
  uint8_t length_;
};

}  // namespace probe::zorder

#endif  // PROBE_ZORDER_ZVALUE_H_
