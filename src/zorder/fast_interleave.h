#ifndef PROBE_ZORDER_FAST_INTERLEAVE_H_
#define PROBE_ZORDER_FAST_INTERLEAVE_H_

#include <cstdint>

/// \file
/// Branch-free bit interleaving for the hot path.
///
/// The generic Shuffle walks the split schedule bit by bit — necessary for
/// custom schedules and partial z values, but the overwhelmingly common
/// case is a full-resolution shuffle under the default alternating
/// schedule: a plain Morton encode. These routines do that with the
/// classic parallel-prefix magic constants (a handful of shifts and masks
/// instead of one loop iteration per bit); Shuffle and Unshuffle dispatch
/// to them automatically. Exposed for direct use and for the equivalence
/// tests/micro benches.

namespace probe::zorder {

/// Spreads the low 32 bits of `x` so bit i lands at position 2i.
uint64_t SpreadBits2(uint32_t x);

/// Inverse of SpreadBits2: gathers every second bit (positions 0, 2, ...).
uint32_t GatherBits2(uint64_t x);

/// Spreads the low 21 bits of `x` so bit i lands at position 3i.
uint64_t SpreadBits3(uint32_t x);

/// Inverse of SpreadBits3: gathers every third bit.
uint32_t GatherBits3(uint64_t x);

/// Morton rank of (x, y) with `bits` bits per dimension (bits <= 32),
/// x contributing the higher bit of each pair (the alternating schedule
/// starting with x). Equals Shuffle2D(...).ToInteger() on default grids.
uint64_t MortonEncode2(uint32_t x, uint32_t y, int bits);

/// Inverse of MortonEncode2.
void MortonDecode2(uint64_t z, int bits, uint32_t* x, uint32_t* y);

/// Morton rank of (x, y, w) with `bits` bits per dimension (bits <= 21).
uint64_t MortonEncode3(uint32_t x, uint32_t y, uint32_t w, int bits);

/// Inverse of MortonEncode3.
void MortonDecode3(uint64_t z, int bits, uint32_t* x, uint32_t* y,
                   uint32_t* w);

}  // namespace probe::zorder

#endif  // PROBE_ZORDER_FAST_INTERLEAVE_H_
