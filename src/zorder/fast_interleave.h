#ifndef PROBE_ZORDER_FAST_INTERLEAVE_H_
#define PROBE_ZORDER_FAST_INTERLEAVE_H_

#include <cstdint>

/// \file
/// Branch-free bit interleaving for the hot path.
///
/// The generic Shuffle walks the split schedule bit by bit — necessary for
/// custom schedules and partial z values, but the overwhelmingly common
/// case is a full-resolution shuffle under the default alternating
/// schedule: a plain Morton encode. These routines do that with the
/// classic parallel-prefix magic constants (a handful of shifts and masks
/// instead of one loop iteration per bit); Shuffle and Unshuffle dispatch
/// to them automatically. Exposed for direct use and for the equivalence
/// tests/micro benches.
///
/// On x86-64 with BMI2, spread/gather are single instructions: PDEP
/// deposits a value's bits at mask positions, PEXT extracts them. The
/// unsuffixed entry points dispatch at runtime (one predictable branch on
/// a cached CPUID bit) between the BMI2 path and the portable
/// magic-constant fallback; the suffixed variants pin one implementation
/// for equivalence tests and microbenches. The *Bmi2 functions must only
/// be called when HasBmi2() is true (they are compiled for the bmi2
/// target; on non-x86 builds they forward to the portable code).

namespace probe::zorder {

/// True when this CPU executes PDEP/PEXT (x86 BMI2) and the *Bmi2
/// variants are callable. Detected once per process.
bool HasBmi2();

/// Spreads the low 32 bits of `x` so bit i lands at position 2i.
uint64_t SpreadBits2(uint32_t x);
uint64_t SpreadBits2Portable(uint32_t x);
uint64_t SpreadBits2Bmi2(uint32_t x);

/// Inverse of SpreadBits2: gathers every second bit (positions 0, 2, ...).
uint32_t GatherBits2(uint64_t x);
uint32_t GatherBits2Portable(uint64_t x);
uint32_t GatherBits2Bmi2(uint64_t x);

/// Spreads the low 21 bits of `x` so bit i lands at position 3i.
uint64_t SpreadBits3(uint32_t x);
uint64_t SpreadBits3Portable(uint32_t x);
uint64_t SpreadBits3Bmi2(uint32_t x);

/// Inverse of SpreadBits3: gathers every third bit.
uint32_t GatherBits3(uint64_t x);
uint32_t GatherBits3Portable(uint64_t x);
uint32_t GatherBits3Bmi2(uint64_t x);

/// Morton rank of (x, y) with `bits` bits per dimension (bits <= 32),
/// x contributing the higher bit of each pair (the alternating schedule
/// starting with x). Equals Shuffle2D(...).ToInteger() on default grids.
uint64_t MortonEncode2(uint32_t x, uint32_t y, int bits);

/// Inverse of MortonEncode2.
void MortonDecode2(uint64_t z, int bits, uint32_t* x, uint32_t* y);

/// Morton rank of (x, y, w) with `bits` bits per dimension (bits <= 21).
uint64_t MortonEncode3(uint32_t x, uint32_t y, uint32_t w, int bits);

/// Inverse of MortonEncode3.
void MortonDecode3(uint64_t z, int bits, uint32_t* x, uint32_t* y,
                   uint32_t* w);

}  // namespace probe::zorder

#endif  // PROBE_ZORDER_FAST_INTERLEAVE_H_
