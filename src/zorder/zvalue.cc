#include "zorder/zvalue.h"

#include <cassert>

#include "util/bits.h"

namespace probe::zorder {

ZValue ZValue::FromRaw(uint64_t left_justified_bits, int length) {
  assert(length >= 0 && length <= kMaxBits);
  return ZValue(left_justified_bits & util::HighMask(length), length);
}

ZValue ZValue::FromInteger(uint64_t value, int length) {
  assert(length >= 0 && length <= kMaxBits);
  const uint64_t raw = length == 0 ? 0 : value << (kMaxBits - length);
  return ZValue(raw & util::HighMask(length), length);
}

std::optional<ZValue> ZValue::Parse(std::string_view text) {
  if (text.size() > static_cast<size_t>(kMaxBits)) return std::nullopt;
  uint64_t bits = 0;
  int length = 0;
  for (char c : text) {
    if (c != '0' && c != '1') return std::nullopt;
    if (c == '1') bits |= 1ULL << (kMaxBits - 1 - length);
    ++length;
  }
  return ZValue(bits, length);
}

uint64_t ZValue::ToInteger() const {
  return length_ == 0 ? 0 : bits_ >> (kMaxBits - length_);
}

int ZValue::BitAt(int i) const {
  assert(i >= 0 && i < length_);
  return static_cast<int>((bits_ >> (kMaxBits - 1 - i)) & 1);
}

ZValue ZValue::Child(int bit) const {
  assert(length_ < kMaxBits);
  assert(bit == 0 || bit == 1);
  uint64_t bits = bits_;
  if (bit) bits |= 1ULL << (kMaxBits - 1 - length_);
  return ZValue(bits, length_ + 1);
}

ZValue ZValue::Parent() const {
  assert(length_ > 0);
  const int new_length = length_ - 1;
  return ZValue(bits_ & util::HighMask(new_length), new_length);
}

ZValue ZValue::Prefix(int new_length) const {
  assert(new_length >= 0 && new_length <= length_);
  return ZValue(bits_ & util::HighMask(new_length), new_length);
}

bool ZValue::Contains(const ZValue& other) const {
  if (length_ > other.length_) return false;
  return (other.bits_ & util::HighMask(length_)) == bits_;
}

uint64_t ZValue::RangeLo(int total_bits) const {
  assert(total_bits >= length_ && total_bits <= kMaxBits);
  // length_ == 0 on a 64-bit grid would shift by 64; the root's range
  // starts at 0 regardless.
  if (length_ == 0) return 0;
  return ToInteger() << (total_bits - length_);
}

uint64_t ZValue::RangeHi(int total_bits) const {
  assert(total_bits >= length_ && total_bits <= kMaxBits);
  return RangeLo(total_bits) | util::LowMask(total_bits - length_);
}

std::string ZValue::ToString() const {
  std::string out;
  out.reserve(length_);
  for (int i = 0; i < length_; ++i) out.push_back(BitAt(i) ? '1' : '0');
  return out;
}

}  // namespace probe::zorder
