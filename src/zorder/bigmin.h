#ifndef PROBE_ZORDER_BIGMIN_H_
#define PROBE_ZORDER_BIGMIN_H_

#include <cstdint>

#include "zorder/grid.h"

/// \file
/// Skip-ahead computation for the range-search merge.
///
/// Section 3.3's optimized merge skips "parts of the space that could not
/// possibly contribute to the result". When the current point's z value has
/// run past the current box element, the merge needs the smallest z value
/// greater than the point's that re-enters the query box — the quantity
/// known in the literature as BIGMIN (Tropf & Herzog). We implement BIGMIN
/// and its mirror LITMAX over full-resolution z integers for any grid
/// dimensionality; the lazy decomposition generator (src/decompose) uses
/// them as an oracle in tests and the index uses them as an alternative
/// skipping strategy in ablation benches.

namespace probe::zorder {

/// Smallest full-resolution z value that is > `zcur` and whose cell lies
/// inside the box whose lower/upper corners shuffle to `zmin` / `zmax`.
/// Returns false if no such value exists (zcur is at or past the box's
/// last cell). All inputs are right-justified grid.total_bits()-bit values.
bool BigMin(const GridSpec& grid, uint64_t zcur, uint64_t zmin, uint64_t zmax,
            uint64_t* out);

/// Largest full-resolution z value that is < `zcur` and inside the box.
/// Returns false if no such value exists.
bool LitMax(const GridSpec& grid, uint64_t zcur, uint64_t zmin, uint64_t zmax,
            uint64_t* out);

/// True iff the cell with z value `z` lies inside the box [zmin-corner,
/// zmax-corner]; i.e. every dimension's coordinate is within range. This is
/// the per-point membership test the merge replaces with element ranges.
bool InBox(const GridSpec& grid, uint64_t z, uint64_t zmin, uint64_t zmax);

}  // namespace probe::zorder

#endif  // PROBE_ZORDER_BIGMIN_H_
