#ifndef PROBE_ZORDER_SHUFFLE_H_
#define PROBE_ZORDER_SHUFFLE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "zorder/grid.h"
#include "zorder/zvalue.h"

/// \file
/// `shuffle` and `unshuffle`: the coordinate <-> z value mappings of
/// Section 4.
///
/// shuffle interleaves the coordinate bits (x bit first) into a z value;
/// unshuffle is the inverse. A *partial* z value (fewer than k*d bits)
/// names a rectangular region rather than a single cell; UnshuffleRegion
/// recovers that region's per-dimension extents, which is how the z value
/// acts as "a concise description of the shape, size and position of the
/// region" (Section 3.1).

namespace probe::zorder {

/// Per-dimension closed interval [lo, hi] of grid cells.
struct DimRange {
  uint32_t lo = 0;
  uint32_t hi = 0;

  uint64_t width() const { return static_cast<uint64_t>(hi) - lo + 1; }
  friend bool operator==(const DimRange&, const DimRange&) = default;
};

/// Computes the full-resolution z value of the cell at `coords` (one value
/// per dimension, each < grid.side()). The result has grid.total_bits()
/// bits. This is the paper's shuffle applied to a one-pixel region.
ZValue Shuffle(const GridSpec& grid, std::span<const uint32_t> coords);

/// Convenience overload for 2-d grids.
ZValue Shuffle2D(const GridSpec& grid, uint32_t x, uint32_t y);

/// Inverse of Shuffle for full-resolution z values: recovers the cell
/// coordinates. Requires z.length() == grid.total_bits().
std::vector<uint32_t> Unshuffle(const GridSpec& grid, const ZValue& z);

/// General unshuffle: the region named by a (possibly partial) z value,
/// as per-dimension cell ranges. A full-length z value yields degenerate
/// ranges (lo == hi); the empty z value yields the whole grid.
std::vector<DimRange> UnshuffleRegion(const GridSpec& grid, const ZValue& z);

/// The z value of the region whose per-dimension extents are `ranges`,
/// when that region is one produced by the recursive splitting policy
/// (each range must be an aligned power-of-two block, and the consumed bit
/// counts must be compatible with the alternating split order; i.e. the
/// region must be a genuine element). This is the paper's
/// `shuffle(r: region) -> element`. Asserts on non-element regions.
ZValue ShuffleRegion(const GridSpec& grid, std::span<const DimRange> ranges);

/// True iff `ranges` describe a region obtainable from the splitting policy
/// (see ShuffleRegion); such regions are exactly the potential elements.
bool IsElementRegion(const GridSpec& grid, std::span<const DimRange> ranges);

}  // namespace probe::zorder

#endif  // PROBE_ZORDER_SHUFFLE_H_
