#include "zorder/bigmin.h"

#include <cassert>

namespace probe::zorder {

namespace {

// Mask of the bit positions strictly below `p` (LSB-indexed) that belong to
// the same dimension as `p` in the interleaved word, under the grid's
// split schedule.
uint64_t SameDimLowerMask(const GridSpec& grid, int p) {
  if (!grid.has_custom_schedule) {
    // Round-robin schedule: same-dimension bits sit at a fixed stride.
    uint64_t mask = 0;
    for (int q = p - grid.dims; q >= 0; q -= grid.dims) mask |= 1ULL << q;
    return mask;
  }
  const int total = grid.total_bits();
  const int dim = grid.SplitDimAt(total - 1 - p);
  uint64_t mask = 0;
  for (int q = p - 1; q >= 0; --q) {
    if (grid.SplitDimAt(total - 1 - q) == dim) mask |= 1ULL << q;
  }
  return mask;
}

// v with bit p set to 1 and all same-dimension bits below p cleared: the
// smallest value whose dimension coordinate has a 1 in this position and
// the given higher-order coordinate bits.
uint64_t Load1000(const GridSpec& grid, uint64_t v, int p) {
  v |= 1ULL << p;
  v &= ~SameDimLowerMask(grid, p);
  return v;
}

// v with bit p cleared and all same-dimension bits below p set: the largest
// value whose dimension coordinate has a 0 in this position.
uint64_t Load0111(const GridSpec& grid, uint64_t v, int p) {
  v &= ~(1ULL << p);
  v |= SameDimLowerMask(grid, p);
  return v;
}

}  // namespace

bool InBox(const GridSpec& grid, uint64_t z, uint64_t zmin, uint64_t zmax) {
  // Walk the bits MSB to LSB keeping, per dimension, whether the coordinate
  // is still clamped to the box's lower/upper bound in that dimension.
  // k <= 8, so fixed-size state arrays suffice.
  bool at_min[8], at_max[8];
  for (int i = 0; i < grid.dims; ++i) at_min[i] = at_max[i] = true;
  const int total = grid.total_bits();
  for (int j = 0; j < total; ++j) {
    const int p = total - 1 - j;  // LSB-indexed position
    const int dim = grid.SplitDimAt(j);
    const int zb = static_cast<int>((z >> p) & 1);
    const int lb = static_cast<int>((zmin >> p) & 1);
    const int ub = static_cast<int>((zmax >> p) & 1);
    if (at_min[dim]) {
      if (zb < lb) return false;
      if (zb > lb) at_min[dim] = false;
    }
    if (at_max[dim]) {
      if (zb > ub) return false;
      if (zb < ub) at_max[dim] = false;
    }
  }
  return true;
}

bool BigMin(const GridSpec& grid, uint64_t zcur, uint64_t zmin, uint64_t zmax,
            uint64_t* out) {
  assert(grid.Valid());
  const int total = grid.total_bits();
  uint64_t bigmin = 0;
  bool have_bigmin = false;
  for (int j = 0; j < total; ++j) {
    const int p = total - 1 - j;
    const int zb = static_cast<int>((zcur >> p) & 1);
    const int lb = static_cast<int>((zmin >> p) & 1);
    const int ub = static_cast<int>((zmax >> p) & 1);
    if (zb == 0 && lb == 0 && ub == 0) continue;
    if (zb == 0 && lb == 0 && ub == 1) {
      // Box spans both halves of this dimension's bit; zcur is in the lower
      // half. The upper half's first cell is a candidate; keep searching the
      // lower half.
      bigmin = Load1000(grid, zmin, p);
      have_bigmin = true;
      zmax = Load0111(grid, zmax, p);
    } else if (zb == 0 && lb == 1) {
      // Box entirely in the upper half; everything in it exceeds zcur.
      *out = zmin;
      return true;
    } else if (zb == 1 && ub == 0) {
      // Box entirely in the lower half; nothing in it exceeds zcur.
      if (have_bigmin) *out = bigmin;
      return have_bigmin;
    } else if (zb == 1 && lb == 0 && ub == 1) {
      // zcur is in the upper half; the lower half of the box is all below
      // zcur, so restrict the box to the upper half.
      zmin = Load1000(grid, zmin, p);
    }
    // zb == 1 && lb == 1 && ub == 1: continue.
  }
  // zcur itself is inside the box; the next in-box value is found by asking
  // again from zcur + 1, but for the merge's contract we report the saved
  // candidate if any (zcur in box means the caller should not have called).
  if (have_bigmin) {
    *out = bigmin;
    return true;
  }
  return false;
}

bool LitMax(const GridSpec& grid, uint64_t zcur, uint64_t zmin, uint64_t zmax,
            uint64_t* out) {
  assert(grid.Valid());
  const int total = grid.total_bits();
  uint64_t litmax = 0;
  bool have_litmax = false;
  for (int j = 0; j < total; ++j) {
    const int p = total - 1 - j;
    const int zb = static_cast<int>((zcur >> p) & 1);
    const int lb = static_cast<int>((zmin >> p) & 1);
    const int ub = static_cast<int>((zmax >> p) & 1);
    if (zb == 0 && lb == 0 && ub == 0) continue;
    if (zb == 0 && lb == 0 && ub == 1) {
      // zcur in the lower half; the box's upper half is all above zcur.
      zmax = Load0111(grid, zmax, p);
    } else if (zb == 0 && lb == 1) {
      // Box entirely above zcur.
      if (have_litmax) *out = litmax;
      return have_litmax;
    } else if (zb == 1 && ub == 0) {
      // Box entirely below zcur: its maximum is the answer.
      *out = zmax;
      return true;
    } else if (zb == 1 && lb == 0 && ub == 1) {
      // zcur in the upper half; the lower half's last cell is a candidate.
      litmax = Load0111(grid, zmax, p);
      have_litmax = true;
      zmin = Load1000(grid, zmin, p);
    }
    // zb == 1 && lb == 1 && ub == 1: continue.
  }
  if (have_litmax) {
    *out = litmax;
    return true;
  }
  return false;
}

}  // namespace probe::zorder
