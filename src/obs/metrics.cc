#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace probe::obs {

namespace {

/// Escapes a label value for the text exposition (backslash, quote,
/// newline — the three characters Prometheus requires escaped).
std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Renders `{k="v",...}`; empty labels render as nothing. `extra` appends
/// one more pair (the histogram `le` label) without copying the set.
std::string RenderLabels(const Labels& labels,
                         const std::pair<std::string, std::string>* extra =
                             nullptr) {
  if (labels.empty() && extra == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + EscapeLabelValue(v) + "\"";
  }
  if (extra != nullptr) {
    if (!first) out += ",";
    out += extra->first + "=\"" + EscapeLabelValue(extra->second) + "\"";
  }
  out += "}";
  return out;
}

/// Shortest %g-style rendering of a double (Prometheus values are floats;
/// integral values render without a trailing ".000000").
std::string RenderValue(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

Labels Normalized(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

// ------------------------------------------------------------- Histogram

std::vector<uint64_t> HistogramSnapshot::Cumulative() const {
  std::vector<uint64_t> out;
  out.reserve(counts.size());
  uint64_t running = 0;
  for (const uint64_t c : counts) {
    running += c;
    out.push_back(running);
  }
  return out;
}

bool HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (bounds != other.bounds) return false;
  assert(counts.size() == other.counts.size());
  for (size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  sum += other.sum;
  count += other.count;
  return true;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()) &&
         std::adjacent_find(bounds_.begin(), bounds_.end()) == bounds_.end() &&
         "histogram bounds must be strictly increasing");
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
}

void Histogram::Observe(double value) {
  // First bound >= value; everything past the last bound lands in +Inf.
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.reserve(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snap.counts.push_back(counts_[i].load(std::memory_order_relaxed));
  }
  // Derived from the counts actually read: "sum of buckets == count" holds
  // in every snapshot, even mid-write.
  for (const uint64_t c : snap.counts) snap.count += c;
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

std::vector<double> Histogram::LatencyBucketsMs() {
  return {0.01, 0.05, 0.1, 0.5, 1, 5, 10, 50, 100, 500, 1000, 10000};
}

// ------------------------------------------------------ RegistrySnapshot

double RegistrySnapshot::CounterValue(std::string_view name,
                                      const Labels& labels) const {
  const Labels want = Normalized(labels);
  double total = 0.0;
  for (const Sample& s : counters) {
    if (s.name != name) continue;
    if (!want.empty() && Normalized(s.labels) != want) continue;
    total += s.value;
  }
  return total;
}

std::string RegistrySnapshot::RenderText() const {
  std::string out;
  std::string last_type_line;
  const auto type_line = [&out, &last_type_line](const std::string& name,
                                                 const char* type) {
    std::string line = "# TYPE " + name + " " + type + "\n";
    if (line != last_type_line) {
      out += line;
      last_type_line = std::move(line);
    }
  };
  for (const Sample& s : counters) {
    type_line(s.name, "counter");
    out += s.name + RenderLabels(s.labels) + " " + RenderValue(s.value) + "\n";
  }
  for (const Sample& s : gauges) {
    type_line(s.name, "gauge");
    out += s.name + RenderLabels(s.labels) + " " + RenderValue(s.value) + "\n";
  }
  for (const HistogramSample& h : histograms) {
    type_line(h.name, "histogram");
    const std::vector<uint64_t> cumulative = h.hist.Cumulative();
    for (size_t i = 0; i < cumulative.size(); ++i) {
      const std::pair<std::string, std::string> le = {
          "le", i < h.hist.bounds.size() ? RenderValue(h.hist.bounds[i])
                                         : std::string("+Inf")};
      out += h.name + "_bucket" + RenderLabels(h.labels, &le) + " " +
             std::to_string(cumulative[i]) + "\n";
    }
    out += h.name + "_sum" + RenderLabels(h.labels) + " " +
           RenderValue(h.hist.sum) + "\n";
    out += h.name + "_count" + RenderLabels(h.labels) + " " +
           std::to_string(h.hist.count) + "\n";
  }
  return out;
}

// --------------------------------------------------------------- Registry

Counter* Registry::GetCounter(std::string_view name, const Labels& labels) {
  const Key key{std::string(name), Normalized(labels)};
  util::MutexLock lock(&mutex_);
  auto it = counters_.find(key);
  if (it == counters_.end()) {
    it = counters_.emplace(key, std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* Registry::GetGauge(std::string_view name, const Labels& labels) {
  const Key key{std::string(name), Normalized(labels)};
  util::MutexLock lock(&mutex_);
  auto it = gauges_.find(key);
  if (it == gauges_.end()) {
    it = gauges_.emplace(key, std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* Registry::GetHistogram(std::string_view name, const Labels& labels,
                                  std::vector<double> bounds) {
  const Key key{std::string(name), Normalized(labels)};
  util::MutexLock lock(&mutex_);
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(key, std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return it->second.get();
}

Registry::CollectorHandle Registry::AddCollector(Collector fn) {
  util::MutexLock lock(&mutex_);
  const uint64_t id = next_collector_id_++;
  collectors_.emplace(id, std::move(fn));
  return CollectorHandle(this, id);
}

void Registry::RemoveCollector(uint64_t id) {
  util::MutexLock lock(&mutex_);
  collectors_.erase(id);
}

RegistrySnapshot Registry::Snapshot() const {
  RegistrySnapshot snap;
  std::vector<Collector> collectors;
  {
    util::MutexLock lock(&mutex_);
    for (const auto& [key, counter] : counters_) {
      snap.counters.push_back(
          {key.first, key.second, static_cast<double>(counter->value())});
    }
    for (const auto& [key, gauge] : gauges_) {
      snap.gauges.push_back(
          {key.first, key.second, static_cast<double>(gauge->value())});
    }
    for (const auto& [key, hist] : histograms_) {
      snap.histograms.push_back({key.first, key.second, hist->Snapshot()});
    }
    collectors.reserve(collectors_.size());
    for (const auto& [id, fn] : collectors_) collectors.push_back(fn);
  }
  // Collectors run outside the registry lock: they may read component
  // state guarded by the component's own locks, and must be free to call
  // back into the registry.
  for (const Collector& fn : collectors) fn(&snap);
  return snap;
}

Registry& Registry::Default() {
  static Registry* registry = new Registry();
  return *registry;
}

// -------------------------------------------------------- CollectorHandle

Registry::CollectorHandle::CollectorHandle(CollectorHandle&& other) noexcept
    : registry_(other.registry_), id_(other.id_) {
  other.registry_ = nullptr;
}

Registry::CollectorHandle& Registry::CollectorHandle::operator=(
    CollectorHandle&& other) noexcept {
  if (this != &other) {
    Release();
    registry_ = other.registry_;
    id_ = other.id_;
    other.registry_ = nullptr;
  }
  return *this;
}

Registry::CollectorHandle::~CollectorHandle() { Release(); }

void Registry::CollectorHandle::Release() {
  if (registry_ != nullptr) {
    registry_->RemoveCollector(id_);
    registry_ = nullptr;
  }
}

}  // namespace probe::obs
