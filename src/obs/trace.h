#ifndef PROBE_OBS_TRACE_H_
#define PROBE_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

/// \file
/// Per-query tracing: what one execution did, stage by stage.
///
/// A Trace is scoped to a single query execution (ExplainAnalyze creates
/// one per run). Spans are RAII: StartSpan stamps a steady-clock start,
/// destruction (or Finish) records the duration, and counters attached to
/// a span land in its record. EXPLAIN ANALYZE maps spans one-to-one onto
/// plan nodes — a span's wall time covers the node's Open..Close lifetime,
/// so a parent's span nests its children's work, exactly like the plan
/// tree nests its operators.
///
/// The trace itself is thread-safe: the parallel z-partition workers of a
/// ParallelRangeScan may all contribute counters to the same trace while
/// the coordinating thread holds the node's span. Span *handles* follow
/// the usual value rule — one owner at a time.

namespace probe::obs {

class Trace {
 public:
  /// One finished (or still-open) span.
  struct SpanRecord {
    std::string name;
    /// Start offset from the trace's construction, milliseconds.
    double start_ms = 0.0;
    /// Wall duration; negative while the span is still open.
    double ms = -1.0;
    /// Counters attached through Span::Count, in attachment order.
    std::vector<std::pair<std::string, uint64_t>> counters;
  };

  /// RAII span handle. Movable, not copyable; finishes at destruction.
  class Span {
   public:
    Span() = default;
    Span(Span&& other) noexcept : trace_(other.trace_), index_(other.index_) {
      other.trace_ = nullptr;
    }
    Span& operator=(Span&& other) noexcept;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { Finish(); }

    /// Attaches (or bumps) a counter on this span's record.
    void Count(std::string_view name, uint64_t delta);

    /// Records the duration now; later calls are no-ops.
    void Finish();

    bool active() const { return trace_ != nullptr; }

   private:
    friend class Trace;
    Span(Trace* trace, size_t index) : trace_(trace), index_(index) {}
    Trace* trace_ = nullptr;
    size_t index_ = 0;
  };

  Trace() : start_(std::chrono::steady_clock::now()) {}
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  /// Opens a span. Thread-safe; spans from different threads interleave in
  /// start order.
  Span StartSpan(std::string name);

  /// Bumps a trace-level counter (not tied to any span). Thread-safe —
  /// this is the call parallel partition workers make.
  void Count(std::string_view name, uint64_t delta);

  /// Snapshot of the span records so far (open spans have ms < 0).
  std::vector<SpanRecord> Spans() const;

  /// Snapshot of the trace-level counters, sorted by name.
  std::vector<std::pair<std::string, uint64_t>> Counters() const;

  /// Milliseconds since the trace was created.
  double ElapsedMs() const;

  /// Human-readable rendering: one line per span (indented by `indent`
  /// spaces), then the trace-level counters.
  std::string RenderText(int indent = 0) const;

 private:
  double SinceStartMs() const;

  std::chrono::steady_clock::time_point start_;
  // Leaf lock: held for record bookkeeping only, never across user code.
  mutable util::Mutex mutex_;
  std::vector<SpanRecord> spans_ PROBE_GUARDED_BY(mutex_);
  std::map<std::string, uint64_t, std::less<>> counters_
      PROBE_GUARDED_BY(mutex_);
};

}  // namespace probe::obs

#endif  // PROBE_OBS_TRACE_H_
