#include "obs/runtime_metrics.h"

#include <atomic>

namespace probe::obs {

namespace {

std::atomic<bool> g_enabled{true};

}  // namespace

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void QueryMetrics::RecordQuery(uint64_t leaf, uint64_t internal,
                               uint64_t scanned, uint64_t elements,
                               uint64_t skips, uint64_t result_count) {
  if (!Enabled()) return;
  queries->Increment();
  leaf_pages->Increment(leaf);
  internal_pages->Increment(internal);
  points_scanned->Increment(scanned);
  elements_generated->Increment(elements);
  bigmin_skips->Increment(skips);
  results->Increment(result_count);
}

QueryMetrics& QueryMetrics::Default() {
  static QueryMetrics* metrics = [] {
    Registry& r = Registry::Default();
    auto* m = new QueryMetrics();
    m->queries = r.GetCounter("probe_index_queries_total");
    m->leaf_pages = r.GetCounter("probe_index_leaf_pages_total");
    m->internal_pages = r.GetCounter("probe_index_internal_pages_total");
    m->points_scanned = r.GetCounter("probe_index_points_scanned_total");
    m->elements_generated = r.GetCounter("probe_index_elements_total");
    m->bigmin_skips = r.GetCounter("probe_index_bigmin_skips_total");
    m->results = r.GetCounter("probe_index_results_total");
    return m;
  }();
  return *metrics;
}

StorageMetrics& StorageMetrics::Default() {
  static StorageMetrics* metrics = [] {
    Registry& r = Registry::Default();
    auto* m = new StorageMetrics();
    m->pager_reads = r.GetCounter("probe_pager_reads_total");
    m->pager_writes = r.GetCounter("probe_pager_writes_total");
    m->pager_bytes_read = r.GetCounter("probe_pager_bytes_read_total");
    m->pager_bytes_written = r.GetCounter("probe_pager_bytes_written_total");
    m->pager_syncs = r.GetCounter("probe_pager_syncs_total");
    m->wal_appends = r.GetCounter("probe_wal_appends_total");
    m->wal_bytes = r.GetCounter("probe_wal_bytes_total");
    m->wal_syncs = r.GetCounter("probe_wal_syncs_total");
    m->wal_commits = r.GetCounter("probe_wal_commits_total");
    m->checkpoints = r.GetCounter("probe_checkpoints_total");
    m->checkpoint_ms = r.GetHistogram("probe_checkpoint_ms", {},
                                      Histogram::LatencyBucketsMs());
    m->wal_group_size = r.GetHistogram(
        "probe_wal_group_size", {}, {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
    m->snapshot_pins = r.GetGauge("probe_snapshot_pins");
    m->snapshot_epoch_lag = r.GetHistogram(
        "probe_snapshot_epoch_lag", {}, {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 64.0});
    return m;
  }();
  return *metrics;
}

ThreadPoolMetrics& ThreadPoolMetrics::Default() {
  static ThreadPoolMetrics* metrics = [] {
    Registry& r = Registry::Default();
    auto* m = new ThreadPoolMetrics();
    m->queue_depth = r.GetGauge("probe_threadpool_queue_depth");
    m->tasks = r.GetCounter("probe_threadpool_tasks_total");
    m->task_ms = r.GetHistogram("probe_threadpool_task_ms", {},
                                Histogram::LatencyBucketsMs());
    return m;
  }();
  return *metrics;
}

}  // namespace probe::obs
