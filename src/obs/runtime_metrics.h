#ifndef PROBE_OBS_RUNTIME_METRICS_H_
#define PROBE_OBS_RUNTIME_METRICS_H_

#include <cstdint>

#include "obs/metrics.h"

/// \file
/// The process-wide metric families the engine's built-in instrumentation
/// publishes to, all living in Registry::Default().
///
/// Layering: obs sits at the bottom of the dependency graph (below util,
/// storage, index, query), so these structs speak in raw numbers — the
/// index layer flushes its QueryStats here at the *end* of each query (a
/// handful of relaxed adds per query, not per element), and the storage
/// layer bumps counters per physical I/O, where an atomic increment is
/// noise against the actual work. bench_obs holds the whole arrangement
/// under a <3% overhead budget.
///
/// SetEnabled(false) turns every built-in recording site into an early
/// return — the uninstrumented baseline the overhead bench compares
/// against, and an escape hatch for workloads that want the last percent.

namespace probe::obs {

/// Process-wide switch for the built-in instrumentation (default on).
void SetEnabled(bool enabled);
bool Enabled();

/// Index-side aggregates: one Record call per completed query.
struct QueryMetrics {
  Counter* queries;
  Counter* leaf_pages;
  Counter* internal_pages;
  Counter* points_scanned;
  Counter* elements_generated;
  Counter* bigmin_skips;
  Counter* results;

  /// Flushes one query's counters (no-op when disabled).
  void RecordQuery(uint64_t leaf, uint64_t internal, uint64_t scanned,
                   uint64_t elements, uint64_t skips, uint64_t result_count);

  static QueryMetrics& Default();
};

/// Storage-side counters: pager I/O, WAL traffic, checkpoints.
struct StorageMetrics {
  Counter* pager_reads;
  Counter* pager_writes;
  Counter* pager_bytes_read;
  Counter* pager_bytes_written;
  Counter* pager_syncs;
  Counter* wal_appends;
  Counter* wal_bytes;
  Counter* wal_syncs;
  Counter* wal_commits;
  Counter* checkpoints;
  Histogram* checkpoint_ms;
  /// Commit records covered per fsync (group commit batching; 1 = no
  /// batching on that sync).
  Histogram* wal_group_size;
  /// Snapshot handles currently pinning an epoch, across all engines.
  Gauge* snapshot_pins;
  /// How many epochs behind the published epoch a snapshot was when it
  /// released its pin (0 = released while still current).
  Histogram* snapshot_epoch_lag;

  static StorageMetrics& Default();
};

/// Thread-pool counters: queue depth and task latency. A pool opts in via
/// ThreadPool::EnableMetrics; with no metrics attached the pool's hot path
/// is untouched.
struct ThreadPoolMetrics {
  Gauge* queue_depth;
  Counter* tasks;
  /// Enqueue-to-completion latency (queue wait + execution), milliseconds.
  Histogram* task_ms;

  static ThreadPoolMetrics& Default();
};

}  // namespace probe::obs

#endif  // PROBE_OBS_RUNTIME_METRICS_H_
