#ifndef PROBE_OBS_METRICS_H_
#define PROBE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

/// \file
/// Runtime metrics: lock-cheap counters for a serving system.
///
/// The paper's argument is that z-order search runs on ordinary DBMS
/// machinery with *predictable* page-access costs; the planner (Section 9
/// of DESIGN.md) estimates those costs, and this subsystem measures them
/// in production-shaped workloads so estimates can be validated outside
/// hand-run benches.
///
/// Design constraints, in order:
///
///   1. Hot paths are wait-free: Counter/Gauge/Histogram updates are single
///      relaxed atomic RMWs (the histogram's sum is an atomic double, a CAS
///      loop on hardware without native FP fetch_add). The parallel query
///      lanes hammer these from every worker.
///   2. Registration is rare and locked: a Registry hands out stable
///      pointers under a mutex once, and the caller caches them.
///   3. Snapshots are *per-metric coherent* under concurrent writers: a
///      counter is one atomic load; a histogram snapshot derives its total
///      from the bucket counts it actually read, so "sum of buckets ==
///      count" holds in every snapshot even while writers run. Cross-metric
///      coherence (counter A vs counter B) is not promised — totals are
///      exact once writers quiesce.
///
/// Components that already keep their own counters (BufferPool, Wal) join
/// a Registry through collector callbacks instead of double-counting on
/// the hot path; the RAII CollectorHandle unregisters on destruction so
/// short-lived pools can participate safely.

namespace probe::obs {

/// Monotonic event counter. All operations are thread-safe and wait-free.
class Counter {
 public:
  void Increment(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Instantaneous level (queue depth, pending pages). Thread-safe.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// One histogram read: bucket upper bounds (ascending; an implicit +Inf
/// bucket follows), per-bucket counts, and the derived total. `count` is
/// always the sum of `counts`, so the bucket invariants hold in any
/// snapshot, concurrent writers or not.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<uint64_t> counts;  // size == bounds.size() + 1
  double sum = 0.0;
  uint64_t count = 0;

  /// Cumulative counts in Prometheus `le` form (last entry == count).
  std::vector<uint64_t> Cumulative() const;

  /// Adds `other` into this snapshot. Returns false (and leaves *this
  /// untouched) when the bucket bounds differ — merging histograms of
  /// different shape has no meaning.
  bool Merge(const HistogramSnapshot& other);
};

/// Fixed-bucket histogram: values are classified into the bucket whose
/// upper bound is the first >= the value (Prometheus `le` semantics), with
/// a catch-all +Inf bucket at the end. Observe is wait-free per bucket.
class Histogram {
 public:
  /// `bounds` are the finite upper bounds, strictly increasing. An empty
  /// list degenerates to a single +Inf bucket (count + sum only).
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  /// Per-metric-coherent read (see file comment).
  HistogramSnapshot Snapshot() const;

  const std::vector<double>& bounds() const { return bounds_; }

  /// Latency-flavored default bounds (milliseconds), 0.01 .. 10000.
  static std::vector<double> LatencyBucketsMs();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<double> sum_{0.0};
};

/// Metric labels, e.g. {{"pool", "main"}}. Order-insensitive: families
/// normalize by sorting on key.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// One scalar sample in a registry snapshot.
struct Sample {
  std::string name;
  Labels labels;
  double value = 0.0;
};

/// One histogram sample in a registry snapshot.
struct HistogramSample {
  std::string name;
  Labels labels;
  HistogramSnapshot hist;
};

/// Everything a registry knew at one Collect() call.
struct RegistrySnapshot {
  std::vector<Sample> counters;
  std::vector<Sample> gauges;
  std::vector<HistogramSample> histograms;

  /// Value of the named counter (summed over matching label sets when
  /// `labels` is empty); 0 when absent.
  double CounterValue(std::string_view name, const Labels& labels = {}) const;

  /// Prometheus text exposition of the snapshot.
  std::string RenderText() const;
};

/// Labeled metric families plus collector callbacks. Getters dedupe on
/// (name, labels): the same family member is returned to every caller, so
/// two subsystems asking for the same counter share one cell. Returned
/// pointers are stable for the registry's lifetime.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(std::string_view name, const Labels& labels = {});
  Gauge* GetGauge(std::string_view name, const Labels& labels = {});
  /// `bounds` is used on first creation; later calls with the same
  /// (name, labels) return the existing histogram regardless of bounds.
  Histogram* GetHistogram(std::string_view name, const Labels& labels,
                          std::vector<double> bounds);

  /// A collector contributes samples of a component that keeps its own
  /// counters (a BufferPool, a Wal) at every Snapshot()/RenderText(). The
  /// handle unregisters on destruction; destroy it before the component.
  class CollectorHandle {
   public:
    CollectorHandle() = default;
    CollectorHandle(CollectorHandle&& other) noexcept;
    CollectorHandle& operator=(CollectorHandle&& other) noexcept;
    CollectorHandle(const CollectorHandle&) = delete;
    CollectorHandle& operator=(const CollectorHandle&) = delete;
    ~CollectorHandle();

    void Release();

   private:
    friend class Registry;
    CollectorHandle(Registry* registry, uint64_t id)
        : registry_(registry), id_(id) {}
    Registry* registry_ = nullptr;
    uint64_t id_ = 0;
  };

  using Collector = std::function<void(RegistrySnapshot*)>;
  [[nodiscard]] CollectorHandle AddCollector(Collector fn);

  /// Consistent-per-metric snapshot of every family plus every collector's
  /// contribution (see file comment for the exact guarantee).
  RegistrySnapshot Snapshot() const;

  /// Prometheus text exposition — the scrape endpoint's body.
  std::string RenderText() const { return Snapshot().RenderText(); }

  /// The process-wide registry the built-in instrumentation publishes to.
  static Registry& Default();

 private:
  friend class CollectorHandle;
  using Key = std::pair<std::string, Labels>;
  void RemoveCollector(uint64_t id);

  // Leaf lock: held only for map lookups/inserts; collector callbacks run
  // outside it (they may take component locks and re-enter the registry).
  mutable util::Mutex mutex_;
  std::map<Key, std::unique_ptr<Counter>> counters_ PROBE_GUARDED_BY(mutex_);
  std::map<Key, std::unique_ptr<Gauge>> gauges_ PROBE_GUARDED_BY(mutex_);
  std::map<Key, std::unique_ptr<Histogram>> histograms_
      PROBE_GUARDED_BY(mutex_);
  std::map<uint64_t, Collector> collectors_ PROBE_GUARDED_BY(mutex_);
  uint64_t next_collector_id_ PROBE_GUARDED_BY(mutex_) = 1;
};

}  // namespace probe::obs

#endif  // PROBE_OBS_METRICS_H_
