#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace probe::obs {

namespace {

std::string FormatMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", ms);
  return buf;
}

}  // namespace

Trace::Span& Trace::Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    Finish();
    trace_ = other.trace_;
    index_ = other.index_;
    other.trace_ = nullptr;
  }
  return *this;
}

void Trace::Span::Count(std::string_view name, uint64_t delta) {
  if (trace_ == nullptr) return;
  util::MutexLock lock(&trace_->mutex_);
  auto& counters = trace_->spans_[index_].counters;
  for (auto& [n, v] : counters) {
    if (n == name) {
      v += delta;
      return;
    }
  }
  counters.emplace_back(std::string(name), delta);
}

void Trace::Span::Finish() {
  if (trace_ == nullptr) return;
  const double end = trace_->SinceStartMs();
  {
    util::MutexLock lock(&trace_->mutex_);
    SpanRecord& record = trace_->spans_[index_];
    record.ms = end - record.start_ms;
  }
  trace_ = nullptr;
}

double Trace::SinceStartMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

Trace::Span Trace::StartSpan(std::string name) {
  const double at = SinceStartMs();
  util::MutexLock lock(&mutex_);
  const size_t index = spans_.size();
  spans_.push_back({std::move(name), at, -1.0, {}});
  return Span(this, index);
}

void Trace::Count(std::string_view name, uint64_t delta) {
  util::MutexLock lock(&mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

std::vector<Trace::SpanRecord> Trace::Spans() const {
  util::MutexLock lock(&mutex_);
  return spans_;
}

std::vector<std::pair<std::string, uint64_t>> Trace::Counters() const {
  util::MutexLock lock(&mutex_);
  return {counters_.begin(), counters_.end()};
}

double Trace::ElapsedMs() const { return SinceStartMs(); }

std::string Trace::RenderText(int indent) const {
  const std::string pad(static_cast<size_t>(std::max(indent, 0)), ' ');
  std::string out;
  for (const SpanRecord& span : Spans()) {
    out += pad + span.name + "  " +
           (span.ms < 0 ? std::string("(open)") : FormatMs(span.ms) + " ms");
    for (const auto& [name, value] : span.counters) {
      out += "  " + name + "=" + std::to_string(value);
    }
    out += "\n";
  }
  const auto counters = Counters();
  if (!counters.empty()) {
    out += pad + "counters:";
    for (const auto& [name, value] : counters) {
      out += " " + name + "=" + std::to_string(value);
    }
    out += "\n";
  }
  return out;
}

}  // namespace probe::obs
