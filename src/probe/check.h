#ifndef PROBE_PROBE_CHECK_H_
#define PROBE_PROBE_CHECK_H_

#include <cstdint>

/// \file
/// The invariant-audit layer.
///
/// Everything in this library rests on a handful of algebraic invariants:
/// z values are totally ordered and containment is exactly the prefix
/// relation (Section 2); decompositions are disjoint z-interval covers
/// (Section 3); the skip merge, the BIGMIN skip, and the spatial join never
/// move backwards in z order (Sections 3.3-4); B-tree pages keep their keys
/// sorted and their occupancy bounds; every buffer-pool pin is eventually
/// unpinned by its own thread. This header provides the machinery to state
/// those invariants *at the point where they must hold* and to check them
/// in auditing builds while costing nothing in Release:
///
///   PROBE_ASSERT(cond)            O(1) invariant at a hot-path site.
///   PROBE_ASSERT_MSG(cond, msg)   Same, with a diagnostic string.
///   PROBE_AUDIT(stmt)             An arbitrary (possibly expensive) audit
///                                 statement, e.g. a call into one of the
///                                 per-subsystem auditors.
///
/// All three compile to nothing — operands unevaluated — unless
/// PROBE_AUDIT_ENABLED is 1, which happens in Debug builds (no NDEBUG) and
/// in any build configured with -DPROBE_AUDIT=ON. The per-subsystem auditor
/// *functions* (zorder/audit.h, decompose/audit.h, btree/audit.h,
/// storage/audit.h) are compiled unconditionally, so tests can invoke them
/// directly in any configuration; only the hot-path call sites vanish.
///
/// A failed check prints the expression, location, and message to stderr
/// and calls abort() — deliberately signal-unfriendly so sanitizers, ctest,
/// and gtest death tests all see a hard failure.

#if defined(PROBE_AUDIT_ON) || !defined(NDEBUG)
#define PROBE_AUDIT_ENABLED 1
#else
#define PROBE_AUDIT_ENABLED 0
#endif

namespace probe::check {

/// Prints a diagnostic and aborts. `message` may be null.
[[noreturn]] void AuditFailure(const char* file, int line, const char* expr,
                               const char* message);

/// True when the running binary was built with audits compiled in. Lets
/// benches and tests report which mode they measured without macro games.
constexpr bool AuditsEnabled() { return PROBE_AUDIT_ENABLED != 0; }

/// Tracks a sequence that must be non-decreasing (optionally strictly
/// increasing) in z order. Cursors and merges embed one of these and feed
/// it through PROBE_AUDIT; the object is cheap enough to keep unconditionally
/// but its Observe calls are compiled out with the rest of the audits.
class ZMonotone {
 public:
  /// `strict` requires each observation to strictly exceed the last.
  explicit ZMonotone(bool strict = false) : strict_(strict) {}

  /// Checks `z` against the previous observation and records it.
  void Observe(uint64_t z, const char* where);

  /// Forgets the history (e.g. after an intentional rewind via Seek).
  void Reset() { have_ = false; }

  bool has_observation() const { return have_; }
  uint64_t last() const { return last_; }

 private:
  uint64_t last_ = 0;
  bool have_ = false;
  bool strict_ = false;
};

}  // namespace probe::check

#if PROBE_AUDIT_ENABLED

#define PROBE_ASSERT(cond)                                              \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::probe::check::AuditFailure(__FILE__, __LINE__, #cond, nullptr); \
    }                                                                   \
  } while (0)

#define PROBE_ASSERT_MSG(cond, msg)                                 \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::probe::check::AuditFailure(__FILE__, __LINE__, #cond, msg); \
    }                                                               \
  } while (0)

#define PROBE_AUDIT(stmt) \
  do {                    \
    stmt;                 \
  } while (0)

#else  // !PROBE_AUDIT_ENABLED — operands must not be evaluated.

#define PROBE_ASSERT(cond) ((void)0)
#define PROBE_ASSERT_MSG(cond, msg) ((void)0)
#define PROBE_AUDIT(stmt) ((void)0)

#endif  // PROBE_AUDIT_ENABLED

#endif  // PROBE_PROBE_CHECK_H_
