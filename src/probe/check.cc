#include "probe/check.h"

#include <cstdio>
#include <cstdlib>

namespace probe::check {

void AuditFailure(const char* file, int line, const char* expr,
                  const char* message) {
  std::fprintf(stderr, "PROBE_AUDIT failure at %s:%d: %s%s%s\n", file, line,
               expr, message != nullptr ? " — " : "",
               message != nullptr ? message : "");
  std::fflush(stderr);
  std::abort();
}

void ZMonotone::Observe(uint64_t z, const char* where) {
  if (have_) {
    if (strict_ ? z <= last_ : z < last_) {
      AuditFailure(__FILE__, __LINE__,
                   strict_ ? "z cursor moved non-forward"
                           : "z cursor moved backwards",
                   where);
    }
  }
  have_ = true;
  last_ = z;
}

}  // namespace probe::check
