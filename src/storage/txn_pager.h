#ifndef PROBE_STORAGE_TXN_PAGER_H_
#define PROBE_STORAGE_TXN_PAGER_H_

#include <cstdint>
#include <map>
#include <span>

#include "storage/pager.h"
#include "storage/wal.h"
#include "util/single_writer.h"

/// \file
/// Transactional pager: routes page writes through the write-ahead log.
///
/// TxnPager is a Pager, so a BufferPool (and through it the B-tree and the
/// zkd index) stacks on top unchanged — the pool's dirty-page table and
/// FlushAll are the only hooks durability needs. Underneath, it enforces a
/// **no-steal / force-on-checkpoint** policy against the base file:
///
///   * `Write` appends the page's after-image to the log and parks the
///     page in an in-memory pending table. The base file is *never*
///     touched by ordinary traffic, so an uncommitted batch can't leak
///     half its pages to disk (no steal).
///   * `Commit` appends a commit record carrying the page count and the
///     caller's metadata blob, then fsyncs the log. Everything logged so
///     far is now the recoverable state.
///   * `Checkpoint` — only at a commit boundary — forces the pending
///     pages into the base file, fsyncs it, and atomically replaces the
///     log with a single checkpoint record (force on checkpoint). The
///     pending table empties and the log length resets.
///
/// Between checkpoints the pending table caches every page written since
/// the last force, bounded by the working set of updates — the price of
/// keeping the base file bytes exactly equal to the last checkpoint, which
/// is what makes recovery pure redo.
///
/// Reads prefer the pending table (it holds the newest images), then the
/// base file; pages allocated but never yet written read as zeros, the
/// same contract MemPager and FilePager have for fresh pages.

namespace probe::storage {

/// Write-ahead-logging Pager wrapper (see file comment). Single-writer,
/// like every mutating path of the engine.
class TxnPager final : public Pager {
 public:
  /// Both `base` and `wal` must outlive the pager. Existing base pages
  /// become the initial committed state (reopen after Recover()).
  TxnPager(Pager* base, Wal* wal);

  PageId Allocate() override;
  void Read(PageId id, Page* out) override;
  void Write(PageId id, const Page& page) override;
  uint32_t page_count() const override { return count_; }
  const PagerStats& stats() const override { return stats_; }
  void ResetStats() override { stats_.Reset(); }
  bool ok() const override { return base_->ok() && wal_->ok() && !wal_->dead(); }
  /// Durability is the log's job; syncing the base outside a checkpoint
  /// would break no-steal, so this syncs the log only.
  void Sync() override { wal_->Sync(); }

  /// Commits the batch written since the last Commit: logs a commit record
  /// (with `meta`, the application's re-attach state) and fsyncs the log.
  /// Returns false on a dead engine — the batch is then not recoverable.
  bool Commit(std::span<const uint8_t> meta);

  /// Forces the committed state into the base file and resets the log to a
  /// single checkpoint record carrying `meta`. Requires a clean commit
  /// boundary: returns false (and does nothing) if writes arrived since
  /// the last Commit, or on a dead engine.
  bool Checkpoint(std::span<const uint8_t> meta);

  /// Pages parked in memory awaiting the next checkpoint.
  size_t pending_pages() const { return pending_.size(); }

  /// Writes since the last successful Commit (must be zero to checkpoint).
  uint64_t uncommitted_writes() const { return uncommitted_writes_; }

  Wal& wal() { return *wal_; }
  Pager& base() { return *base_; }

 private:
  Pager* base_;
  Wal* wal_;
  uint32_t count_;
  uint64_t uncommitted_writes_ = 0;
  // Ordered so a checkpoint forces pages in file order.
  std::map<PageId, Page> pending_;
  PagerStats stats_;
  // Audit-build proof of the class comment's "single-writer" contract:
  // the mutating entry points (Allocate/Write/Commit/Checkpoint) claim
  // this; overlapping claims abort. See util/single_writer.h.
  util::SingleWriterGuard writer_guard_;
};

}  // namespace probe::storage

#endif  // PROBE_STORAGE_TXN_PAGER_H_
