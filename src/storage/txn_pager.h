#ifndef PROBE_STORAGE_TXN_PAGER_H_
#define PROBE_STORAGE_TXN_PAGER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "storage/pager.h"
#include "storage/wal.h"
#include "util/mutex.h"
#include "util/single_writer.h"
#include "util/thread_annotations.h"

/// \file
/// Transactional pager: routes page writes through the write-ahead log.
///
/// TxnPager is a Pager, so a BufferPool (and through it the B-tree and the
/// zkd index) stacks on top unchanged — the pool's dirty-page table and
/// FlushAll are the only hooks durability needs. Underneath, it enforces a
/// **no-steal / force-on-checkpoint** policy against the base file:
///
///   * `Write` appends the page's after-image to the log and parks the
///     page in an in-memory pending table. The base file is *never*
///     touched by ordinary traffic, so an uncommitted batch can't leak
///     half its pages to disk (no steal).
///   * `Commit` appends a commit record carrying the page count and the
///     caller's metadata blob, then makes the log durable. Everything
///     logged so far is now the recoverable state.
///   * `Checkpoint` — only at a commit boundary — forces the pending
///     pages into the base file, fsyncs it, and atomically replaces the
///     log with a single checkpoint record (force on checkpoint). The
///     pending table empties and the log length resets.
///
/// Epochs and snapshot reads. Each commit advances the pager's *epoch*;
/// the pending table is multi-version, tagging every parked image with the
/// epoch of the commit that (will) cover it. `ReadAtEpoch(id, E)` returns
/// the page as of commit E — the newest parked version with epoch <= E,
/// falling back to the base file (whose bytes are exactly the last
/// checkpoint, i.e. older than every parked version). A reader that pins
/// epoch E therefore sees a frozen, committed state while the writer keeps
/// parking versions for E+1, E+2, ... on top — copy-on-write at page
/// granularity, with the no-steal table doing double duty as the version
/// store. `TrimVersions(min)` garbage-collects versions superseded for
/// every epoch >= min (the oldest still-pinned epoch); the steady state
/// with no pinned readers is one version per written page, the same
/// footprint the single-version table had.
///
/// Concurrency contract: mutations (Allocate/Write/Commit/Checkpoint)
/// remain single-writer, serialized by the owner (DurableIndex's apply
/// lock) and audited by SingleWriterGuard. Reads — Read, ReadAtEpoch —
/// may run concurrently with each other and with the writer; the version
/// table has its own leaf mutex.
///
/// Reads prefer the pending table (it holds the newest images), then the
/// base file; pages allocated but never yet written read as zeros, the
/// same contract MemPager and FilePager have for fresh pages.

namespace probe::storage {

/// Write-ahead-logging Pager wrapper (see file comment). Single-writer
/// mutations, concurrent epoch-pinned reads.
class TxnPager final : public Pager {
 public:
  /// Both `base` and `wal` must outlive the pager. Existing base pages
  /// become the initial committed state (reopen after Recover()).
  TxnPager(Pager* base, Wal* wal);

  PageId Allocate() override;
  void Read(PageId id, Page* out) override;
  void Write(PageId id, const Page& page) override;
  uint32_t page_count() const override {
    return count_.load(std::memory_order_acquire);
  }
  /// Unlocked snapshot; exact only while no reader/writer runs.
  const PagerStats& stats() const override { return stats_; }
  void ResetStats() override { stats_.Reset(); }
  bool ok() const override { return base_->ok() && wal_->ok() && !wal_->dead(); }
  /// Durability is the log's job; syncing the base outside a checkpoint
  /// would break no-steal, so this syncs the log only.
  void Sync() override { wal_->Sync(); }

  /// Commits the batch written since the last Commit: logs a commit record
  /// (with `meta`, the application's re-attach state) and waits for it to
  /// be durable. Returns false on a dead engine — the batch is then not
  /// recoverable.
  bool Commit(std::span<const uint8_t> meta);

  /// Appends the commit record and advances the epoch *without* waiting
  /// for durability: returns the commit's LSN (to pass to
  /// Wal::GroupCommit), or 0 on a dead engine. The new epoch must not be
  /// acked or published until the group commit succeeds.
  uint64_t CommitDeferred(std::span<const uint8_t> meta);

  /// Reads page `id` as of commit epoch `epoch` (see file comment). The
  /// caller guarantees `id` was allocated at that epoch (snapshots carry
  /// their frozen page count).
  void ReadAtEpoch(PageId id, uint64_t epoch, Page* out);

  /// Epoch of the newest commit (0 until the first commit, or as restored
  /// via RestoreEpoch after recovery).
  uint64_t committed_epoch() const {
    return committed_epoch_.load(std::memory_order_acquire);
  }

  /// Epoch the in-flight batch will commit as.
  uint64_t next_epoch() const { return committed_epoch() + 1; }

  /// Installs the epoch recovered from the last commit/checkpoint record's
  /// metadata. Call once, before any Write.
  void RestoreEpoch(uint64_t epoch) {
    committed_epoch_.store(epoch, std::memory_order_release);
  }

  /// Drops parked versions superseded for every epoch >= `min_epoch` (the
  /// oldest epoch any reader still pins; pass committed_epoch() when none
  /// do). Never drops a page's newest version.
  void TrimVersions(uint64_t min_epoch);

  /// Forces the committed state into the base file and resets the log to a
  /// single checkpoint record carrying `meta`. Requires a clean commit
  /// boundary — returns false (and does nothing) if writes arrived since
  /// the last Commit, or on a dead engine — and no concurrently pinned
  /// epochs (the owner drains snapshot readers first; parked versions are
  /// all dropped here).
  bool Checkpoint(std::span<const uint8_t> meta);

  /// Pages with at least one parked version awaiting the next checkpoint.
  size_t pending_pages() const;

  /// Parked versions across all pages (== pending_pages() when no reader
  /// pins an old epoch).
  size_t pending_versions() const;

  /// Writes since the last successful Commit (must be zero to checkpoint).
  uint64_t uncommitted_writes() const { return uncommitted_writes_; }

  Wal& wal() { return *wal_; }
  Pager& base() { return *base_; }

 private:
  // One parked after-image: the page as of commit `epoch` (the epoch is
  // next_epoch() while the write is still uncommitted; CommitDeferred
  // turns it committed by advancing the counter past it).
  struct PageVersion {
    uint64_t epoch;
    Page page;
  };

  Pager* base_;
  Wal* wal_;
  std::atomic<uint32_t> count_;
  // Touched only on the single-writer mutation path.
  uint64_t uncommitted_writes_ = 0;
  std::atomic<uint64_t> committed_epoch_{0};

  // Leaf lock: guards the version table and serializes base-file reads
  // against the checkpoint force. Acquired after the buffer pool's locks
  // and after the WAL's (Write appends to the log *before* parking);
  // nothing is acquired while holding it.
  mutable util::Mutex versions_mutex_;
  // Ordered so a checkpoint forces pages in file order; versions within a
  // page are in ascending epoch order.
  std::map<PageId, std::vector<PageVersion>> versions_
      PROBE_GUARDED_BY(versions_mutex_);

  // I/O counters; bumped under versions_mutex_, read unlocked via the
  // Pager interface (quiescent reads only — see stats()).
  PagerStats stats_;
  // Audit-build proof of the single-writer mutation contract: the
  // mutating entry points (Allocate/Write/Commit/Checkpoint) claim this;
  // overlapping claims abort. See util/single_writer.h.
  util::SingleWriterGuard writer_guard_;
};

}  // namespace probe::storage

#endif  // PROBE_STORAGE_TXN_PAGER_H_
