#include "storage/txn_pager.h"

#include <cassert>
#include <chrono>

#include "obs/runtime_metrics.h"

namespace probe::storage {

TxnPager::TxnPager(Pager* base, Wal* wal)
    : base_(base), wal_(wal), count_(base->page_count()) {}

PageId TxnPager::Allocate() {
  util::SingleWriterScope writer(&writer_guard_, "TxnPager::Allocate");
  // The base file is not extended here: the allocation becomes durable
  // via the page count carried by the next commit record, and the page
  // itself via its logged image. An uncommitted allocation simply
  // evaporates at recovery.
  const PageId id = count_++;
  ++stats_.allocations;
  return id;
}

void TxnPager::Read(PageId id, Page* out) {
  assert(id < count_);
  ++stats_.reads;
  const auto it = pending_.find(id);
  if (it != pending_.end()) {
    *out = it->second;
    return;
  }
  if (id < base_->page_count()) {
    base_->Read(id, out);
    return;
  }
  // Allocated since the last checkpoint and never written back: zeros,
  // the fresh-page contract of every pager here.
  out->Clear();
}

void TxnPager::Write(PageId id, const Page& page) {
  util::SingleWriterScope writer(&writer_guard_, "TxnPager::Write");
  assert(id < count_);
  ++stats_.writes;
  // A dead log is a crashed engine: nothing written now can ever become
  // durable, so nothing is parked either — matching what a real crash
  // leaves behind.
  if (wal_->AppendPageImage(id, page) == 0) return;
  ++uncommitted_writes_;
  pending_[id] = page;
}

bool TxnPager::Commit(std::span<const uint8_t> meta) {
  util::SingleWriterScope writer(&writer_guard_, "TxnPager::Commit");
  if (!ok()) return false;
  if (wal_->AppendCommit(count_, meta) == 0) return false;
  uncommitted_writes_ = 0;
  return true;
}

bool TxnPager::Checkpoint(std::span<const uint8_t> meta) {
  util::SingleWriterScope writer(&writer_guard_, "TxnPager::Checkpoint");
  if (!ok()) return false;
  // Forcing mid-batch would push uncommitted images into the base file —
  // exactly the torn state no-steal exists to prevent.
  if (uncommitted_writes_ != 0) return false;
  const auto checkpoint_start = std::chrono::steady_clock::now();

  // The log must be durable before the base changes: if the force below
  // tears a page, recovery redoes it from these records.
  if (!wal_->Sync()) return false;

  while (base_->page_count() < count_) base_->Allocate();
  for (const auto& [id, page] : pending_) {
    base_->Write(id, page);
  }
  base_->Sync();
  if (!base_->ok()) return false;  // injected crash mid-force

  // Atomic cut-over: after this the checkpoint record alone describes the
  // database, and the pending table's job is done.
  if (wal_->RewriteWithCheckpoint(count_, meta) == 0) return false;
  pending_.clear();
  if (obs::Enabled()) {
    obs::StorageMetrics& m = obs::StorageMetrics::Default();
    m.checkpoints->Increment();
    m.checkpoint_ms->Observe(std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() -
                                 checkpoint_start)
                                 .count());
  }
  return true;
}

}  // namespace probe::storage
