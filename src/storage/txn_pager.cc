#include "storage/txn_pager.h"

#include <cassert>
#include <chrono>

#include "obs/runtime_metrics.h"

namespace probe::storage {

TxnPager::TxnPager(Pager* base, Wal* wal)
    : base_(base), wal_(wal), count_(base->page_count()) {}

PageId TxnPager::Allocate() {
  util::SingleWriterScope writer(&writer_guard_, "TxnPager::Allocate");
  // The base file is not extended here: the allocation becomes durable
  // via the page count carried by the next commit record, and the page
  // itself via its logged image. An uncommitted allocation simply
  // evaporates at recovery.
  const PageId id = count_.fetch_add(1, std::memory_order_acq_rel);
  util::MutexLock lock(&versions_mutex_);
  ++stats_.allocations;
  return id;
}

void TxnPager::Read(PageId id, Page* out) {
  assert(id < page_count());
  util::MutexLock lock(&versions_mutex_);
  ++stats_.reads;
  const auto it = versions_.find(id);
  if (it != versions_.end()) {
    // The writer's view: the newest parked image, committed or not.
    *out = it->second.back().page;
    return;
  }
  if (id < base_->page_count()) {
    base_->Read(id, out);
    return;
  }
  // Allocated since the last checkpoint and never written back: zeros,
  // the fresh-page contract of every pager here.
  out->Clear();
}

void TxnPager::ReadAtEpoch(PageId id, uint64_t epoch, Page* out) {
  util::MutexLock lock(&versions_mutex_);
  ++stats_.reads;
  const auto it = versions_.find(id);
  if (it != versions_.end()) {
    // Versions are in ascending epoch order: walk back to the newest one
    // the pinned epoch covers. A handful of entries at most (one per
    // un-trimmed commit that touched the page), so linear is fine.
    const std::vector<PageVersion>& vec = it->second;
    for (auto v = vec.rbegin(); v != vec.rend(); ++v) {
      if (v->epoch <= epoch) {
        *out = v->page;
        return;
      }
    }
    // Every parked version is newer than the pin: the page's bytes at
    // this epoch are whatever the base file holds (or zeros below).
  }
  if (id < base_->page_count()) {
    base_->Read(id, out);
    return;
  }
  out->Clear();
}

void TxnPager::Write(PageId id, const Page& page) {
  util::SingleWriterScope writer(&writer_guard_, "TxnPager::Write");
  assert(id < page_count());
  // A dead log is a crashed engine: nothing written now can ever become
  // durable, so nothing is parked either — matching what a real crash
  // leaves behind. The log append happens before versions_mutex_ is
  // taken, keeping the WAL's lock and this leaf lock un-nested.
  if (wal_->AppendPageImage(id, page) == 0) return;
  const uint64_t epoch = next_epoch();
  util::MutexLock lock(&versions_mutex_);
  ++stats_.writes;
  ++uncommitted_writes_;
  std::vector<PageVersion>& vec = versions_[id];
  if (!vec.empty() && vec.back().epoch == epoch) {
    vec.back().page = page;  // rewrite within the same batch
  } else {
    vec.push_back(PageVersion{epoch, page});
  }
}

uint64_t TxnPager::CommitDeferred(std::span<const uint8_t> meta) {
  util::SingleWriterScope writer(&writer_guard_, "TxnPager::Commit");
  if (!ok()) return 0;
  const uint64_t lsn = wal_->AppendCommitDeferred(page_count(), meta);
  if (lsn == 0) return 0;
  // The parked versions tagged next_epoch() become committed state here;
  // the store is ordered after the log append so ReadAtEpoch can never
  // surface an epoch whose commit record was not at least buffered.
  committed_epoch_.fetch_add(1, std::memory_order_acq_rel);
  uncommitted_writes_ = 0;
  return lsn;
}

bool TxnPager::Commit(std::span<const uint8_t> meta) {
  const uint64_t lsn = CommitDeferred(meta);
  if (lsn == 0) return false;
  return wal_->GroupCommit(lsn);
}

void TxnPager::TrimVersions(uint64_t min_epoch) {
  util::MutexLock lock(&versions_mutex_);
  for (auto& [id, vec] : versions_) {
    // Keep the newest version with epoch <= min_epoch (the anchor every
    // surviving pin resolves to) and everything after it.
    size_t anchor = 0;
    for (size_t i = 0; i < vec.size(); ++i) {
      if (vec[i].epoch <= min_epoch) anchor = i;
    }
    if (anchor > 0) vec.erase(vec.begin(), vec.begin() + anchor);
  }
}

bool TxnPager::Checkpoint(std::span<const uint8_t> meta) {
  util::SingleWriterScope writer(&writer_guard_, "TxnPager::Checkpoint");
  if (!ok()) return false;
  // Forcing mid-batch would push uncommitted images into the base file —
  // exactly the torn state no-steal exists to prevent.
  if (uncommitted_writes_ != 0) return false;
  const auto checkpoint_start = std::chrono::steady_clock::now();

  // The log must be durable before the base changes: if the force below
  // tears a page, recovery redoes it from these records.
  if (!wal_->Sync()) return false;

  const uint32_t count = page_count();
  while (base_->page_count() < count) base_->Allocate();
  {
    // The owner drained every pinned snapshot before calling, so the
    // older versions dropped with the table below have no readers left.
    util::MutexLock lock(&versions_mutex_);
    for (const auto& [id, vec] : versions_) {
      base_->Write(id, vec.back().page);
    }
  }
  base_->Sync();
  if (!base_->ok()) return false;  // injected crash mid-force

  // Atomic cut-over: after this the checkpoint record alone describes the
  // database, and the version table's job is done.
  if (wal_->RewriteWithCheckpoint(count, meta) == 0) return false;
  {
    util::MutexLock lock(&versions_mutex_);
    versions_.clear();
  }
  if (obs::Enabled()) {
    obs::StorageMetrics& m = obs::StorageMetrics::Default();
    m.checkpoints->Increment();
    m.checkpoint_ms->Observe(std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() -
                                 checkpoint_start)
                                 .count());
  }
  return true;
}

size_t TxnPager::pending_pages() const {
  util::MutexLock lock(&versions_mutex_);
  return versions_.size();
}

size_t TxnPager::pending_versions() const {
  util::MutexLock lock(&versions_mutex_);
  size_t n = 0;
  for (const auto& [id, vec] : versions_) n += vec.size();
  return n;
}

}  // namespace probe::storage
