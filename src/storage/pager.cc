#include "storage/pager.h"

#include <cassert>

namespace probe::storage {

PageId MemPager::Allocate() {
  pages_.push_back(std::make_unique<Page>());
  ++stats_.allocations;
  return static_cast<PageId>(pages_.size() - 1);
}

void MemPager::Read(PageId id, Page* out) {
  assert(id < pages_.size());
  *out = *pages_[id];
  ++stats_.reads;
}

void MemPager::Write(PageId id, const Page& page) {
  assert(id < pages_.size());
  *pages_[id] = page;
  ++stats_.writes;
}

}  // namespace probe::storage
