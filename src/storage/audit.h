#ifndef PROBE_STORAGE_AUDIT_H_
#define PROBE_STORAGE_AUDIT_H_

#include <cstdint>

#include "probe/check.h"
#include "storage/buffer_pool.h"

/// \file
/// Pin-balance auditing for the buffer pool.
///
/// Every query path must release every page it pins before it finishes —
/// the parallel partitions rely on it (a leaked pin on another thread's
/// frame would wedge eviction), and PR 1's per-thread pin accounting exists
/// precisely to make this checkable. PinBalanceScope snapshots the calling
/// thread's pin count at construction and verifies it is restored at
/// destruction. The object always compiles; its checks vanish with the
/// audit layer.

namespace probe::storage {

/// RAII audit: the calling thread's buffer-pool pin count must return to
/// its construction-time value by destruction time.
class PinBalanceScope {
 public:
  explicit PinBalanceScope(const char* where) {
#if PROBE_AUDIT_ENABLED
    where_ = where;
    entry_pins_ = BufferPool::PinnedByThisThread();
#else
    (void)where;
#endif
  }

  PinBalanceScope(const PinBalanceScope&) = delete;
  PinBalanceScope& operator=(const PinBalanceScope&) = delete;

  ~PinBalanceScope() { Check(); }

  /// Mid-scope check, e.g. between partitions of a loop.
  void Check() const {
    PROBE_ASSERT_MSG(BufferPool::PinnedByThisThread() == entry_pins_, where_);
  }

#if PROBE_AUDIT_ENABLED
 private:
  const char* where_ = nullptr;
  int64_t entry_pins_ = 0;
#endif
};

}  // namespace probe::storage

#endif  // PROBE_STORAGE_AUDIT_H_
