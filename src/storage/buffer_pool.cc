#include "storage/buffer_pool.h"

namespace probe::storage {

PageRef::PageRef(PageRef&& other) noexcept
    : pool_(other.pool_), frame_(other.frame_) {
  other.pool_ = nullptr;
}

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    other.pool_ = nullptr;
  }
  return *this;
}

PageRef::~PageRef() { Release(); }

Page& PageRef::page() {
  assert(valid());
  return pool_->frames_[frame_].page;
}

const Page& PageRef::page() const {
  assert(valid());
  return pool_->frames_[frame_].page;
}

void PageRef::MarkDirty() {
  assert(valid());
  pool_->frames_[frame_].dirty = true;
}

void PageRef::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(Pager* pager, size_t capacity, EvictionPolicy policy)
    : pager_(pager), capacity_(capacity), policy_(policy) {
  assert(capacity_ >= 1);
  frames_.resize(capacity_);
  free_frames_.reserve(capacity_);
  for (size_t i = capacity_; i-- > 0;) free_frames_.push_back(i);
}

BufferPool::~BufferPool() { FlushAll(); }

PageRef BufferPool::Fetch(PageId id) {
  ++stats_.fetches;
  if (auto it = resident_.find(id); it != resident_.end()) {
    ++stats_.hits;
    Frame& frame = frames_[it->second];
    switch (policy_) {
      case EvictionPolicy::kLru:
        // Pinned frames leave the candidate queue; they re-enter at unpin,
        // which is what makes the order "recently used".
        if (frame.in_queue) {
          queue_.erase(frame.queue_pos);
          frame.in_queue = false;
        }
        break;
      case EvictionPolicy::kFifo:
        break;  // hits do not reorder a FIFO
      case EvictionPolicy::kClock:
        frame.referenced = true;
        break;
    }
    ++frame.pins;
    return PageRef(this, it->second);
  }
  ++stats_.misses;
  const size_t slot = AcquireFrame();
  Frame& frame = frames_[slot];
  pager_->Read(id, &frame.page);
  frame.id = id;
  frame.pins = 1;
  frame.dirty = false;
  frame.referenced = true;
  if (policy_ == EvictionPolicy::kFifo) {
    queue_.push_back(slot);
    frame.queue_pos = std::prev(queue_.end());
    frame.in_queue = true;
  }
  resident_.emplace(id, slot);
  return PageRef(this, slot);
}

PageRef BufferPool::New(PageId* id_out) {
  const PageId id = pager_->Allocate();
  if (id_out != nullptr) *id_out = id;
  const size_t slot = AcquireFrame();
  Frame& frame = frames_[slot];
  frame.page.Clear();
  frame.id = id;
  frame.pins = 1;
  frame.dirty = true;
  frame.referenced = true;
  if (policy_ == EvictionPolicy::kFifo) {
    queue_.push_back(slot);
    frame.queue_pos = std::prev(queue_.end());
    frame.in_queue = true;
  }
  resident_.emplace(id, slot);
  return PageRef(this, slot);
}

void BufferPool::FlushAll() {
  for (Frame& frame : frames_) {
    if (frame.id != kInvalidPageId && frame.dirty) {
      pager_->Write(frame.id, frame.page);
      frame.dirty = false;
      ++stats_.writebacks;
    }
  }
}

void BufferPool::Unpin(size_t slot) {
  Frame& frame = frames_[slot];
  assert(frame.pins > 0);
  if (--frame.pins == 0) {
    switch (policy_) {
      case EvictionPolicy::kLru:
        queue_.push_back(slot);
        frame.queue_pos = std::prev(queue_.end());
        frame.in_queue = true;
        break;
      case EvictionPolicy::kFifo:
        break;  // stays where its load put it
      case EvictionPolicy::kClock:
        frame.referenced = true;
        break;
    }
  }
}

size_t BufferPool::PickVictim() {
  switch (policy_) {
    case EvictionPolicy::kLru: {
      // Only unpinned frames live in the queue; the front is the LRU one.
      assert(!queue_.empty() && "all buffer frames are pinned");
      const size_t slot = queue_.front();
      queue_.pop_front();
      frames_[slot].in_queue = false;
      return slot;
    }
    case EvictionPolicy::kFifo: {
      // Oldest load that is not pinned.
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (frames_[*it].pins == 0) {
          const size_t slot = *it;
          queue_.erase(it);
          frames_[slot].in_queue = false;
          return slot;
        }
      }
      assert(false && "all buffer frames are pinned");
      return 0;
    }
    case EvictionPolicy::kClock: {
      // Second chance sweep; two full passes suffice once reference bits
      // are cleared, a third means everything is pinned.
      for (size_t step = 0; step < 3 * capacity_; ++step) {
        Frame& frame = frames_[clock_hand_];
        const size_t slot = clock_hand_;
        clock_hand_ = (clock_hand_ + 1) % capacity_;
        if (frame.id == kInvalidPageId || frame.pins > 0) continue;
        if (frame.referenced) {
          frame.referenced = false;
          continue;
        }
        return slot;
      }
      assert(false && "all buffer frames are pinned");
      return 0;
    }
  }
  return 0;
}

size_t BufferPool::AcquireFrame() {
  if (!free_frames_.empty()) {
    const size_t slot = free_frames_.back();
    free_frames_.pop_back();
    return slot;
  }
  const size_t slot = PickVictim();
  Frame& frame = frames_[slot];
  if (frame.dirty) {
    pager_->Write(frame.id, frame.page);
    ++stats_.writebacks;
  }
  ++stats_.evictions;
  resident_.erase(frame.id);
  frame.id = kInvalidPageId;
  return slot;
}

}  // namespace probe::storage
