#include "storage/buffer_pool.h"

#include <algorithm>

#include "probe/check.h"

namespace probe::storage {

namespace {

// Per-thread pin balance across all pools (see PinnedByThisThread).
thread_local int64_t tls_pinned_pages = 0;

// Auto shard count: stay single-sharded (exact global replacement
// behavior) until the pool is big enough that every shard still gets a
// generous frame slice; then one shard per 64 frames, capped at 16.
size_t AutoShards(size_t capacity) {
  if (capacity < 256) return 1;
  return std::min<size_t>(16, capacity / 64);
}

}  // namespace

PageRef::PageRef(PageRef&& other) noexcept
    : pool_(other.pool_), frame_(other.frame_) {
  other.pool_ = nullptr;
}

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    other.pool_ = nullptr;
  }
  return *this;
}

PageRef::~PageRef() { Release(); }

Page& PageRef::page() {
  assert(valid());
  return pool_->frames_[frame_].page;
}

const Page& PageRef::page() const {
  assert(valid());
  return pool_->frames_[frame_].page;
}

void PageRef::MarkDirty() {
  assert(valid());
  pool_->frames_[frame_].dirty.store(true, std::memory_order_release);
}

void PageRef::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(Pager* pager, size_t capacity, EvictionPolicy policy,
                       size_t shards)
    : pager_(pager), capacity_(capacity), policy_(policy) {
  assert(capacity_ >= 1);
  frames_ = std::make_unique<Frame[]>(capacity_);
  size_t shard_count = shards == 0 ? AutoShards(capacity_) : shards;
  shard_count = std::clamp<size_t>(shard_count, 1, capacity_);
  shards_.reserve(shard_count);
  // Distribute frames contiguously, remainder to the front shards.
  const size_t base = capacity_ / shard_count;
  const size_t extra = capacity_ % shard_count;
  size_t next = 0;
  for (size_t s = 0; s < shard_count; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->begin = next;
    next += base + (s < extra ? 1 : 0);
    shard->end = next;
    // Construction is single-threaded, but the replacement state is
    // lock-guarded; taking the (uncontended) lock here keeps the clang
    // thread-safety proof total instead of carving out an init exception.
    util::MutexLock lock(&shard->mutex);
    shard->clock_hand = shard->begin;
    shard->free_frames.reserve(shard->end - shard->begin);
    for (size_t i = shard->end; i-- > shard->begin;) {
      frames_[i].shard = static_cast<uint32_t>(s);
      shard->free_frames.push_back(i);
    }
    shards_.push_back(std::move(shard));
  }
}

BufferPool::~BufferPool() {
  FlushAll();
  // Every frame must be unpinned by now: a PageRef outliving its pool
  // would write through a dangling pointer on release.
  PROBE_AUDIT({
    for (size_t f = 0; f < capacity_; ++f) {
      PROBE_ASSERT_MSG(frames_[f].pins == 0,
                       "page still pinned at pool destruction");
    }
  });
}

BufferPool::Shard& BufferPool::ShardFor(PageId id) {
  // Page ids are dense and sequential; a multiplicative hash spreads runs
  // of consecutive ids (a bulk-loaded tree's leaf chain) across shards.
  const uint64_t h = static_cast<uint64_t>(id) * 0x9E3779B97F4A7C15ULL;
  return *shards_[(h >> 32) % shards_.size()];
}

PageRef BufferPool::Fetch(PageId id) {
  fetches_.Increment();
  // Pairs with the acquire fence in stats(): any snapshot that sees this
  // fetch's hit/miss classification also sees the fetch itself, keeping
  // `fetches >= hits + misses` true in every snapshot.
  std::atomic_thread_fence(std::memory_order_release);
  Shard& shard = ShardFor(id);
  // Contention probe: a failed TryLock means this fetch waited to pin.
  if (!shard.mutex.TryLock()) {
    pin_waits_.Increment();
    shard.mutex.Lock();
  }
  util::MutexLock lock(&shard.mutex, util::kAlreadyLocked);
  if (auto it = shard.resident.find(id); it != shard.resident.end()) {
    hits_.Increment();
    Frame& frame = frames_[it->second];
    switch (policy_) {
      case EvictionPolicy::kLru:
        // Pinned frames leave the candidate queue; they re-enter at unpin,
        // which is what makes the order "recently used".
        if (frame.in_queue) {
          shard.queue.erase(frame.queue_pos);
          frame.in_queue = false;
        }
        break;
      case EvictionPolicy::kFifo:
        break;  // hits do not reorder a FIFO
      case EvictionPolicy::kClock:
        frame.referenced = true;
        break;
    }
    ++frame.pins;
    ++tls_pinned_pages;
    return PageRef(this, it->second);
  }
  misses_.Increment();
  const size_t slot = AcquireFrame(shard);
  Frame& frame = frames_[slot];
  {
    util::MutexLock io_lock(&io_mutex_);
    pager_->Read(id, &frame.page);
  }
  frame.id = id;
  frame.pins = 1;
  frame.dirty.store(false, std::memory_order_relaxed);
  frame.referenced = true;
  if (policy_ == EvictionPolicy::kFifo) {
    shard.queue.push_back(slot);
    frame.queue_pos = std::prev(shard.queue.end());
    frame.in_queue = true;
  }
  shard.resident.emplace(id, slot);
  ++tls_pinned_pages;
  return PageRef(this, slot);
}

PageRef BufferPool::New(PageId* id_out) {
  PageId id;
  {
    util::MutexLock io_lock(&io_mutex_);
    id = pager_->Allocate();
  }
  if (id_out != nullptr) *id_out = id;
  Shard& shard = ShardFor(id);
  util::MutexLock lock(&shard.mutex);
  const size_t slot = AcquireFrame(shard);
  Frame& frame = frames_[slot];
  frame.page.Clear();
  frame.id = id;
  frame.pins = 1;
  frame.dirty.store(true, std::memory_order_relaxed);
  frame.referenced = true;
  if (policy_ == EvictionPolicy::kFifo) {
    shard.queue.push_back(slot);
    frame.queue_pos = std::prev(shard.queue.end());
    frame.in_queue = true;
  }
  shard.resident.emplace(id, slot);
  ++tls_pinned_pages;
  return PageRef(this, slot);
}

void BufferPool::FlushAll() {
  for (auto& shard : shards_) {
    util::MutexLock lock(&shard->mutex);
    for (size_t i = shard->begin; i < shard->end; ++i) {
      Frame& frame = frames_[i];
      if (frame.id != kInvalidPageId &&
          frame.dirty.load(std::memory_order_acquire)) {
        util::MutexLock io_lock(&io_mutex_);
        pager_->Write(frame.id, frame.page);
        frame.dirty.store(false, std::memory_order_relaxed);
        writebacks_.Increment();
      }
    }
  }
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats snapshot;
  // Classifications first, the fetch total last: together with the
  // release fence in Fetch, every hit/miss this snapshot counts has its
  // fetch included too — `fetches >= hits + misses` in any snapshot.
  snapshot.hits = hits_.value();
  snapshot.misses = misses_.value();
  snapshot.writebacks = writebacks_.value();
  snapshot.evictions = evictions_.value();
  snapshot.pin_waits = pin_waits_.value();
  std::atomic_thread_fence(std::memory_order_acquire);
  snapshot.fetches = fetches_.value();
  return snapshot;
}

void BufferPool::ResetStats() {
  fetches_.Reset();
  hits_.Reset();
  misses_.Reset();
  writebacks_.Reset();
  evictions_.Reset();
  pin_waits_.Reset();
}

int64_t BufferPool::PinnedByThisThread() { return tls_pinned_pages; }

obs::Registry::CollectorHandle RegisterPoolMetrics(obs::Registry& registry,
                                                   const std::string& name,
                                                   const BufferPool& pool) {
  const obs::Labels labels = {{"pool", name}};
  return registry.AddCollector([labels, &pool](obs::RegistrySnapshot* snap) {
    const BufferPoolStats s = pool.stats();
    const auto add = [&](const char* metric, uint64_t v) {
      snap->counters.push_back({metric, labels, static_cast<double>(v)});
    };
    add("probe_bufferpool_fetches_total", s.fetches);
    add("probe_bufferpool_hits_total", s.hits);
    add("probe_bufferpool_misses_total", s.misses);
    add("probe_bufferpool_writebacks_total", s.writebacks);
    add("probe_bufferpool_evictions_total", s.evictions);
    add("probe_bufferpool_pin_waits_total", s.pin_waits);
  });
}

void BufferPool::Unpin(size_t slot) {
  Frame& frame = frames_[slot];
  Shard& shard = *shards_[frame.shard];
  util::MutexLock lock(&shard.mutex);
  assert(frame.pins > 0);
  --tls_pinned_pages;
  if (--frame.pins == 0) {
    switch (policy_) {
      case EvictionPolicy::kLru:
        shard.queue.push_back(slot);
        frame.queue_pos = std::prev(shard.queue.end());
        frame.in_queue = true;
        break;
      case EvictionPolicy::kFifo:
        break;  // stays where its load put it
      case EvictionPolicy::kClock:
        frame.referenced = true;
        break;
    }
  }
}

size_t BufferPool::PickVictim(Shard& shard) {
  switch (policy_) {
    case EvictionPolicy::kLru: {
      // Only unpinned frames live in the queue; the front is the LRU one.
      assert(!shard.queue.empty() && "all buffer frames of the shard are pinned");
      const size_t slot = shard.queue.front();
      shard.queue.pop_front();
      frames_[slot].in_queue = false;
      return slot;
    }
    case EvictionPolicy::kFifo: {
      // Oldest load that is not pinned.
      for (auto it = shard.queue.begin(); it != shard.queue.end(); ++it) {
        if (frames_[*it].pins == 0) {
          const size_t slot = *it;
          shard.queue.erase(it);
          frames_[slot].in_queue = false;
          return slot;
        }
      }
      assert(false && "all buffer frames of the shard are pinned");
      return shard.begin;
    }
    case EvictionPolicy::kClock: {
      // Second chance sweep; two full passes suffice once reference bits
      // are cleared, a third means everything is pinned.
      const size_t span = shard.end - shard.begin;
      for (size_t step = 0; step < 3 * span; ++step) {
        Frame& frame = frames_[shard.clock_hand];
        const size_t slot = shard.clock_hand;
        ++shard.clock_hand;
        if (shard.clock_hand == shard.end) shard.clock_hand = shard.begin;
        if (frame.id == kInvalidPageId || frame.pins > 0) continue;
        if (frame.referenced) {
          frame.referenced = false;
          continue;
        }
        return slot;
      }
      assert(false && "all buffer frames of the shard are pinned");
      return shard.begin;
    }
  }
  return shard.begin;
}

size_t BufferPool::AcquireFrame(Shard& shard) {
  if (!shard.free_frames.empty()) {
    const size_t slot = shard.free_frames.back();
    shard.free_frames.pop_back();
    return slot;
  }
  const size_t slot = PickVictim(shard);
  Frame& frame = frames_[slot];
  if (frame.dirty.load(std::memory_order_acquire)) {
    util::MutexLock io_lock(&io_mutex_);
    pager_->Write(frame.id, frame.page);
    writebacks_.Increment();
  }
  evictions_.Increment();
  shard.resident.erase(frame.id);
  frame.id = kInvalidPageId;
  return slot;
}

}  // namespace probe::storage
