#include "storage/recovery.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cstring>

#include "storage/page.h"
#include "storage/wal.h"

namespace probe::storage {

namespace {

uint64_t FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size);
}

}  // namespace

RecoveryResult Recover(const std::string& wal_path, FilePager* base) {
  RecoveryResult result;
  result.page_count = base->page_count();

  // Pass 1 — analysis: walk the valid prefix, remembering the last commit
  // or checkpoint boundary. Everything after it (torn bytes and complete
  // records of an unfinished batch alike) will be discarded.
  uint64_t boundary_end = 0;
  {
    WalReader reader(wal_path);
    if (!reader.ok()) return result;  // no log: base is authoritative
    result.log_found = true;
    WalRecord record;
    while (reader.Next(&record)) {
      ++result.records_scanned;
      if (record.type == WalRecordType::kCommit ||
          record.type == WalRecordType::kCheckpoint) {
        result.boundary_lsn = record.lsn;
        result.boundary_was_checkpoint =
            record.type == WalRecordType::kCheckpoint;
        result.page_count = record.page_count;
        result.meta = record.payload;
        boundary_end = record.end_offset;
      }
    }
  }

  // Pass 2 — redo: replay every committed page image into the base file
  // in LSN order. Later images of the same page overwrite earlier ones,
  // and replaying an image already in the base is a no-op — both of which
  // make a second recovery land on identical bytes.
  if (result.boundary_lsn != 0) {
    WalReader reader(wal_path);
    WalRecord record;
    while (reader.Next(&record) && record.lsn <= result.boundary_lsn) {
      if (record.type != WalRecordType::kPageImage) continue;
      while (record.page_id >= base->page_count()) base->Allocate();
      Page page;
      std::memcpy(page.data(), record.payload.data(), Page::kSize);
      base->Write(record.page_id, page);
      ++result.records_redone;
    }
  }

  // Restore the committed page count exactly: a crash mid-checkpoint may
  // have extended the base past it, and committed allocations that only
  // ever lived in the log may fall short of it (their pages are zero).
  if (base->page_count() != result.page_count) {
    base->TruncateTo(result.page_count);
  }
  base->Sync();

  // Cut the log back to the boundary so the discarded tail cannot be read
  // a second time; an empty boundary empties the log.
  const uint64_t log_size = FileSize(wal_path);
  if (log_size > boundary_end) {
    result.bytes_truncated = log_size - boundary_end;
    [[maybe_unused]] const int rc =
        ::truncate(wal_path.c_str(), static_cast<off_t>(boundary_end));
  }
  return result;
}

}  // namespace probe::storage
