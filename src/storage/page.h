#ifndef PROBE_STORAGE_PAGE_H_
#define PROBE_STORAGE_PAGE_H_

#include <array>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <type_traits>

/// \file
/// Disk pages of the simulated storage engine.
///
/// The paper's experiments measure *page accesses*: "a disk page can be
/// seen as storing all the points whose z values are in a certain range"
/// (Section 5.2). Our substrate is a simulated disk — a flat array of
/// fixed-size pages — because the metric depends only on which pages are
/// touched, not on a physical device. Page capacity in records (20 points
/// per page in the paper's runs) is configured at the B-tree layer; the
/// byte size here just has to be large enough to hold it.

namespace probe::storage {

/// Identifies a page within a pager.
using PageId = uint32_t;

/// Sentinel for "no page".
inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

/// A fixed-size block of bytes with typed accessors.
class Page {
 public:
  static constexpr size_t kSize = 4096;

  Page() { bytes_.fill(0); }

  uint8_t* data() { return bytes_.data(); }
  const uint8_t* data() const { return bytes_.data(); }

  /// Reads a trivially-copyable T at byte `offset`.
  template <typename T>
  T Read(size_t offset) const {
    static_assert(std::is_trivially_copyable_v<T>);
    assert(offset + sizeof(T) <= kSize);
    T value;
    std::memcpy(&value, bytes_.data() + offset, sizeof(T));
    return value;
  }

  /// Writes a trivially-copyable T at byte `offset`.
  template <typename T>
  void Write(size_t offset, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    assert(offset + sizeof(T) <= kSize);
    std::memcpy(bytes_.data() + offset, &value, sizeof(T));
  }

  /// Zeroes the whole page.
  void Clear() { bytes_.fill(0); }

 private:
  std::array<uint8_t, kSize> bytes_;
};

}  // namespace probe::storage

#endif  // PROBE_STORAGE_PAGE_H_
