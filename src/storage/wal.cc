#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstring>

#include "obs/runtime_metrics.h"
#include "util/crc32.h"
#include "util/yieldpoint.h"

namespace probe::storage {

namespace {

// crc(4) + len(4) + lsn(8) + type(1).
constexpr size_t kHeaderBytes = 17;
// Largest payload a reader will believe: a page image plus slack for
// metadata blobs. Anything bigger is treated as a torn/corrupt record.
constexpr uint32_t kMaxPayload = static_cast<uint32_t>(Page::kSize) + 4096;

void PutU32(uint8_t* dst, uint32_t v) { std::memcpy(dst, &v, 4); }
void PutU64(uint8_t* dst, uint64_t v) { std::memcpy(dst, &v, 8); }
uint32_t GetU32(const uint8_t* src) {
  uint32_t v;
  std::memcpy(&v, src, 4);
  return v;
}
uint64_t GetU64(const uint8_t* src) {
  uint64_t v;
  std::memcpy(&v, src, 8);
  return v;
}

bool ValidType(uint8_t t) {
  return t >= static_cast<uint8_t>(WalRecordType::kPageImage) &&
         t <= static_cast<uint8_t>(WalRecordType::kCheckpoint);
}

// Serializes one complete record (header + payload parts) into `out`.
void BuildRecord(uint64_t lsn, WalRecordType type,
                 std::span<const uint8_t> prefix,
                 std::span<const uint8_t> body, std::vector<uint8_t>* out) {
  const uint32_t len = static_cast<uint32_t>(prefix.size() + body.size());
  out->resize(kHeaderBytes + len);
  uint8_t* p = out->data();
  PutU32(p + 4, len);
  PutU64(p + 8, lsn);
  p[16] = static_cast<uint8_t>(type);
  if (!prefix.empty()) {
    std::memcpy(p + kHeaderBytes, prefix.data(), prefix.size());
  }
  if (!body.empty()) {
    std::memcpy(p + kHeaderBytes + prefix.size(), body.data(), body.size());
  }
  // The checksum covers everything after itself, so a record is valid iff
  // its length, LSN, type, and payload all survived intact.
  PutU32(p, util::Crc32(p + 4, kHeaderBytes - 4 + len));
}

}  // namespace

Wal::Wal(const std::string& path, bool truncate) : path_(path) {
  int flags = O_RDWR | O_CREAT;
  if (truncate) flags |= O_TRUNC;
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) return;
  if (!truncate) {
    // Resume after the existing valid prefix; a torn tail left by a crash
    // is overwritten by the next append. Everything already in the file is
    // the recovered state, so it counts as durable.
    WalReader reader(path);
    WalRecord record;
    while (reader.Next(&record)) {
      next_lsn_ = record.lsn + 1;
    }
    offset_ = reader.valid_bytes();
    file_offset_ = offset_;
    flushed_lsn_ = next_lsn_ - 1;
    durable_lsn_ = next_lsn_ - 1;
  }
}

Wal::~Wal() {
  if (fd_ >= 0) {
    if (!dead()) {
      // Closing flushes buffered records to the OS (no fsync): a clean
      // close leaves the file readable, a crash loses at most what was
      // never synced — the same guarantee the commit protocol makes.
      util::MutexLock lock(&mu_);
      FlushLocked();
    }
    ::close(fd_);
  }
}

void Wal::SetGroupCommitDelay(std::chrono::microseconds delay) {
  util::MutexLock lock(&mu_);
  group_delay_ = delay;
}

std::chrono::microseconds Wal::group_commit_delay() const {
  util::MutexLock lock(&mu_);
  return group_delay_;
}

uint64_t Wal::next_lsn() const {
  util::MutexLock lock(&mu_);
  return next_lsn_;
}

uint64_t Wal::durable_lsn() const {
  util::MutexLock lock(&mu_);
  return durable_lsn_;
}

uint64_t Wal::size_bytes() const {
  util::MutexLock lock(&mu_);
  return offset_;
}

WalStats Wal::stats() const {
  util::MutexLock lock(&mu_);
  return stats_;
}

void Wal::MarkDeadLocked() {
  dead_.store(true, std::memory_order_release);
  commit_cv_.NotifyAll();
}

bool Wal::FlushLocked() {
  if (buffer_.empty()) return true;
  const ssize_t written = ::pwrite(fd_, buffer_.data(), buffer_.size(),
                                   static_cast<off_t>(file_offset_));
  if (written != static_cast<ssize_t>(buffer_.size())) {
    MarkDeadLocked();
    return false;
  }
  file_offset_ += buffer_.size();
  flushed_lsn_ = next_lsn_ - 1;
  buffer_.clear();
  return true;
}

uint64_t Wal::AppendRecord(WalRecordType type,
                           std::span<const uint8_t> header_extra,
                           std::span<const uint8_t> payload) {
  util::MutexLock lock(&mu_);
  assert(ok());
  if (dead_.load(std::memory_order_relaxed)) return 0;
  const uint64_t lsn = next_lsn_;
  std::vector<uint8_t> buf;
  BuildRecord(lsn, type, header_extra, payload, &buf);

  if (stats_.records >= fault_.fail_after_records) {
    // The armed crash point. The buffered prefix was appended successfully
    // before the fault, so it reaches the file (as it already had when
    // appends wrote through); then at most a strict prefix of the victim,
    // and the log goes dead.
    if (FlushLocked()) {
      const size_t torn = static_cast<size_t>(
          std::min<uint64_t>(fault_.tear_bytes, buf.size() - 1));
      if (torn > 0) {
        [[maybe_unused]] const ssize_t n =
            ::pwrite(fd_, buf.data(), torn, static_cast<off_t>(file_offset_));
      }
      MarkDeadLocked();
    }
    return 0;
  }

  buffer_.insert(buffer_.end(), buf.begin(), buf.end());
  offset_ += buf.size();
  next_lsn_ = lsn + 1;
  ++stats_.records;
  stats_.bytes += buf.size();
  if (type == WalRecordType::kCommit) ++pending_commits_;
  if (obs::Enabled()) {
    obs::StorageMetrics& m = obs::StorageMetrics::Default();
    m.wal_appends->Increment();
    m.wal_bytes->Increment(buf.size());
    if (type == WalRecordType::kCommit) m.wal_commits->Increment();
  }
  return lsn;
}

uint64_t Wal::AppendPageImage(PageId id, const Page& page) {
  uint8_t prefix[4];
  PutU32(prefix, id);
  return AppendRecord(WalRecordType::kPageImage, std::span(prefix, 4),
                      std::span(page.data(), Page::kSize));
}

uint64_t Wal::AppendCommitDeferred(uint32_t page_count,
                                   std::span<const uint8_t> meta) {
  util::SchedulePoint("wal.commit.queued");
  uint8_t prefix[4];
  PutU32(prefix, page_count);
  return AppendRecord(WalRecordType::kCommit, std::span(prefix, 4), meta);
}

uint64_t Wal::AppendCommit(uint32_t page_count,
                           std::span<const uint8_t> meta) {
  const uint64_t lsn = AppendCommitDeferred(page_count, meta);
  if (lsn == 0) return 0;
  return GroupCommit(lsn) ? lsn : 0;
}

bool Wal::LeaderSyncLocked() {
  assert(sync_active_);
  if (dead_.load(std::memory_order_relaxed) || !FlushLocked()) {
    sync_active_ = false;
    commit_cv_.NotifyAll();
    return false;
  }
  // Everything flushed so far rides this fsync: the leader's own commit
  // plus every follower whose record made the buffer in time.
  const uint64_t target = flushed_lsn_;
  const uint64_t group = pending_commits_;
  pending_commits_ = 0;
  const int fd = fd_;
  mu_.Unlock();
  util::SchedulePoint("wal.fsync");
  ::fsync(fd);
  mu_.Lock();
  if (durable_lsn_ < target) durable_lsn_ = target;
  ++stats_.syncs;
  if (group > 0) {
    ++stats_.group_syncs;
    stats_.group_commits += group;
    stats_.max_group = std::max(stats_.max_group, group);
  }
  if (obs::Enabled()) {
    obs::StorageMetrics& m = obs::StorageMetrics::Default();
    m.wal_syncs->Increment();
    if (group > 0) m.wal_group_size->Observe(static_cast<double>(group));
  }
  sync_active_ = false;
  commit_cv_.NotifyAll();
  util::SchedulePoint("wal.durable");
  return true;
}

bool Wal::GroupCommit(uint64_t lsn) {
  if (lsn == 0) return false;
  util::SchedulePoint("wal.groupcommit");
  util::MutexLock lock(&mu_);
  for (;;) {
    if (durable_lsn_ >= lsn) return true;
    if (dead_.load(std::memory_order_relaxed)) return false;
    if (sync_active_) {
      // Follower: a leader's fsync is in flight (or it is lingering for
      // us). Wait for the turn to end, then recheck — our record either
      // made that flush or we contend to lead the next one.
      commit_cv_.Wait(&mu_);
      continue;
    }
    // Leader election: this thread owns the next flush+fsync turn.
    sync_active_ = true;
    if (group_delay_.count() > 0) {
      // Linger so more commits join the group; bounded, and cut short if
      // the log dies underneath us or an explicit Sync/checkpoint arrives
      // (it wants durability now — lingering only adds latency).
      const auto deadline = std::chrono::steady_clock::now() + group_delay_;
      while (!dead_.load(std::memory_order_relaxed) && sync_waiters_ == 0 &&
             commit_cv_.WaitUntil(&mu_, deadline) != std::cv_status::timeout) {
      }
    }
    if (!LeaderSyncLocked()) return false;
  }
}

bool Wal::Sync() {
  assert(ok());
  util::MutexLock lock(&mu_);
  ++sync_waiters_;
  commit_cv_.NotifyAll();  // a lingering leader ends its delay for us
  while (sync_active_ && !dead_.load(std::memory_order_relaxed)) {
    commit_cv_.Wait(&mu_);
  }
  --sync_waiters_;
  if (dead_.load(std::memory_order_relaxed)) return false;
  // The turn we waited out may already have made everything durable (the
  // common case after cutting a linger short); don't pay a second fsync.
  if (buffer_.empty() && durable_lsn_ >= next_lsn_ - 1) return true;
  sync_active_ = true;
  return LeaderSyncLocked();
}

bool Wal::Flush() {
  assert(ok());
  util::MutexLock lock(&mu_);
  if (dead_.load(std::memory_order_relaxed)) return false;
  return FlushLocked();
}

uint64_t Wal::RewriteWithCheckpoint(uint32_t page_count,
                                    std::span<const uint8_t> meta) {
  util::MutexLock lock(&mu_);
  assert(ok());
  // Checkpoints run at a quiescent commit boundary, but a straggling
  // GroupCommit turn may still be mid-fsync (or lingering — registering
  // as a sync waiter ends the linger immediately); drain it so nothing
  // touches the file (or fd_) while it is replaced.
  ++sync_waiters_;
  commit_cv_.NotifyAll();
  while (sync_active_ && !dead_.load(std::memory_order_relaxed)) {
    commit_cv_.Wait(&mu_);
  }
  --sync_waiters_;
  if (dead_.load(std::memory_order_relaxed)) return 0;
  // Straggler appends go into the old log first, keeping LSNs continuous.
  // (Callers sync before checkpointing, so this is normally a no-op.)
  if (!FlushLocked()) return 0;
  const uint64_t lsn = next_lsn_;
  uint8_t prefix[4];
  PutU32(prefix, page_count);
  std::vector<uint8_t> buf;
  BuildRecord(lsn, WalRecordType::kCheckpoint, std::span(prefix, 4), meta,
              &buf);

  if (stats_.records >= fault_.fail_after_records) {
    // Crash while writing the replacement log: the temp file never gets
    // renamed, so the previous log (and its recovery story) is untouched.
    MarkDeadLocked();
    return 0;
  }

  const std::string tmp = path_ + ".tmp";
  const int tmp_fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (tmp_fd < 0) {
    MarkDeadLocked();
    return 0;
  }
  const ssize_t written = ::pwrite(tmp_fd, buf.data(), buf.size(), 0);
  if (written != static_cast<ssize_t>(buf.size()) || ::fsync(tmp_fd) != 0) {
    ::close(tmp_fd);
    MarkDeadLocked();
    return 0;
  }
  ::close(tmp_fd);
  // The atomic cut-over: before the rename the old log governs recovery,
  // after it the checkpoint does. There is no in-between state.
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    MarkDeadLocked();
    return 0;
  }
  ::close(fd_);
  fd_ = ::open(path_.c_str(), O_RDWR, 0644);
  if (fd_ < 0) {
    MarkDeadLocked();
    return 0;
  }
  offset_ = buf.size();
  file_offset_ = buf.size();
  flushed_lsn_ = lsn;
  durable_lsn_ = lsn;
  next_lsn_ = lsn + 1;
  ++stats_.records;
  stats_.bytes += buf.size();
  ++stats_.syncs;
  if (obs::Enabled()) {
    obs::StorageMetrics& m = obs::StorageMetrics::Default();
    m.wal_appends->Increment();
    m.wal_bytes->Increment(buf.size());
    m.wal_syncs->Increment();
  }
  return lsn;
}

WalReader::WalReader(const std::string& path) {
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) return;
  const off_t size = ::lseek(fd_, 0, SEEK_END);
  file_size_ = size < 0 ? 0 : static_cast<uint64_t>(size);
}

WalReader::~WalReader() {
  if (fd_ >= 0) ::close(fd_);
}

bool WalReader::Next(WalRecord* out) {
  if (fd_ < 0) return false;
  if (offset_ + kHeaderBytes > file_size_) return false;

  uint8_t header[kHeaderBytes];
  ssize_t n = ::pread(fd_, header, kHeaderBytes, static_cast<off_t>(offset_));
  if (n != static_cast<ssize_t>(kHeaderBytes)) return false;

  const uint32_t crc = GetU32(header);
  const uint32_t len = GetU32(header + 4);
  const uint64_t lsn = GetU64(header + 8);
  const uint8_t type = header[16];
  // A torn or corrupt header shows up as an absurd length, a bad type, a
  // non-advancing LSN, or a payload running past the file; all of them end
  // the valid prefix.
  if (len > kMaxPayload || !ValidType(type)) return false;
  if (offset_ + kHeaderBytes + len > file_size_) return false;
  if (lsn <= prev_lsn_) return false;

  std::vector<uint8_t> payload(len);
  n = ::pread(fd_, payload.data(), len,
              static_cast<off_t>(offset_ + kHeaderBytes));
  if (n != static_cast<ssize_t>(len)) return false;

  uint32_t actual = util::Crc32(header + 4, kHeaderBytes - 4);
  actual = util::Crc32(payload.data(), payload.size(), actual);
  if (actual != crc) return false;

  out->lsn = lsn;
  out->type = static_cast<WalRecordType>(type);
  out->page_id = kInvalidPageId;
  out->page_count = 0;
  if (out->type == WalRecordType::kPageImage) {
    if (len != 4 + Page::kSize) return false;
    out->page_id = GetU32(payload.data());
    out->payload.assign(payload.begin() + 4, payload.end());
  } else {
    if (len < 4) return false;
    out->page_count = GetU32(payload.data());
    out->payload.assign(payload.begin() + 4, payload.end());
  }
  offset_ += kHeaderBytes + len;
  out->end_offset = offset_;
  valid_bytes_ = offset_;
  prev_lsn_ = lsn;
  return true;
}

}  // namespace probe::storage
