#ifndef PROBE_STORAGE_BUFFER_POOL_H_
#define PROBE_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "storage/page.h"
#include "storage/pager.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

/// \file
/// Buffer pool with pluggable replacement (LRU default), safe for
/// concurrent readers.
///
/// Section 4 argues that "the LRU buffering strategy will work well because
/// of our reliance on merging in AG algorithms: each page is accessed at
/// most once, its contents are processed, and then the page will not be
/// needed again for the rest of the merge." The pool's hit/miss counters
/// let the benches verify that claim directly — and the FIFO and CLOCK
/// policies exist so the claim can be tested against alternatives rather
/// than assumed.
///
/// Concurrency model. The parallel query paths run one B+-tree cursor per
/// partition, all hammering the same pool. The frame table is therefore
/// split into *shards*, each owning a fixed slice of the frames with its
/// own mutex, residency map, and replacement state; a page lives in the
/// shard its id hashes to, so two cursors touching different pages rarely
/// contend on the same lock. Stats are atomics. Physical I/O goes through
/// one pager mutex (the simulated disk is not required to be
/// thread-safe); the lock order is always shard → io, never the reverse.
/// Page *contents* are not synchronized by the pool: a pinned frame cannot
/// be evicted, and the query paths are read-only, so concurrent readers
/// need no further locking. Mutators (Insert/Delete/bulk build) must not
/// run concurrently with other access to the same tree — the same
/// single-writer contract the B+-tree itself has.
///
/// Small pools default to a single shard, which preserves the exact
/// residency (and thus hit/miss) behavior of a global LRU; sharding kicks
/// in automatically once the pool is large enough that slicing it cannot
/// starve any one shard of frames.

namespace probe::storage {

/// Page replacement policy.
enum class EvictionPolicy {
  /// Least recently used (the paper's choice): victims ordered by last
  /// unpin.
  kLru,
  /// First in, first out: victims ordered by load time; hits don't reorder.
  kFifo,
  /// Second chance: a circular sweep that spares pages referenced since
  /// the hand last passed.
  kClock,
};

/// Buffer pool counters (a snapshot; the pool keeps them atomically).
struct BufferPoolStats {
  /// Logical page requests (Fetch calls).
  uint64_t fetches = 0;
  /// Requests satisfied from a resident frame.
  uint64_t hits = 0;
  /// Requests that caused a physical read.
  uint64_t misses = 0;
  /// Dirty frames written back on eviction or flush.
  uint64_t writebacks = 0;
  /// Frames evicted.
  uint64_t evictions = 0;
  /// Fetches that had to wait for a contended shard lock before pinning.
  uint64_t pin_waits = 0;

  void Reset() { *this = BufferPoolStats{}; }
};

class BufferPool;

/// RAII pin on a buffered page. While a PageRef is alive, the frame cannot
/// be evicted. Mark dirty through MarkDirty() before mutating the page.
/// A PageRef is not thread-safe itself (like any value type), but distinct
/// refs — including refs to the same page — may be used from distinct
/// threads freely.
class PageRef {
 public:
  PageRef() : pool_(nullptr), frame_(0) {}
  PageRef(PageRef&& other) noexcept;
  PageRef& operator=(PageRef&& other) noexcept;
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  ~PageRef();

  /// The buffered page. Valid only while the ref is non-null.
  Page& page();
  const Page& page() const;

  /// Flags the frame for write-back on eviction/flush.
  void MarkDirty();

  /// True when this ref holds a pinned frame.
  bool valid() const { return pool_ != nullptr; }

  /// Releases the pin early.
  void Release();

 private:
  friend class BufferPool;
  PageRef(BufferPool* pool, size_t frame) : pool_(pool), frame_(frame) {}

  BufferPool* pool_;
  size_t frame_;
};

/// Fixed-capacity page cache over a Pager.
class BufferPool {
 public:
  /// `capacity` is the number of resident frames; must be >= 1. The pager
  /// must outlive the pool. `shards` splits the frame table for concurrent
  /// access; 0 picks automatically (1 for small pools — preserving exact
  /// global-LRU behavior — growing to 16 for large ones). Each shard gets
  /// at least one frame; shard counts that large pools cannot honor are
  /// clamped.
  BufferPool(Pager* pager, size_t capacity,
             EvictionPolicy policy = EvictionPolicy::kLru, size_t shards = 0);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;
  ~BufferPool();

  /// Returns a pinned reference to page `id`, reading it from the pager on
  /// a miss. Asserts if every frame of the page's shard is pinned.
  /// Thread-safe.
  PageRef Fetch(PageId id);

  /// Allocates a fresh page on the pager and returns it pinned (and dirty).
  /// Thread-safe.
  PageRef New(PageId* id_out);

  /// Writes back all dirty frames (they stay resident). Thread-safe, but
  /// pages being mutated concurrently may be written in either state.
  void FlushAll();

  /// Snapshot of the counters — each an obs::Counter read atomically, so a
  /// snapshot taken while workers run is per-field coherent: totals are
  /// exact once quiescent, transiently a fetch may be counted whose
  /// hit/miss classification is not yet (fetches >= hits + misses always).
  BufferPoolStats stats() const;
  void ResetStats();

  size_t capacity() const { return capacity_; }

  /// Number of frame-table shards (1 = the classic global pool).
  size_t shard_count() const { return shards_.size(); }

  /// Pages currently pinned by the calling thread across *all* pools —
  /// per-thread pin accounting for leak checks in tests and for asserting
  /// that a worker releases everything before finishing its partition.
  /// Pins count on the fetching thread and uncount on the releasing one,
  /// so the balance is only meaningful for threads that keep their
  /// PageRefs to themselves (every query path here does).
  static int64_t PinnedByThisThread();

 private:
  friend class PageRef;

  // Thread-safety contract (the TSan `concurrency` suite runs against it,
  // and the clang thread-safety pass proves the helper plumbing below):
  // `id`, `pins`, `queue_pos`, `in_queue`, and `referenced` are guarded by
  // the owning shard's mutex. Which shard owns a frame is decided at
  // construction (`shard` is then immutable), so the guard relation is
  // dynamic — PROBE_GUARDED_BY cannot name "my shard's mutex" — and the
  // static proof instead runs through the PROBE_REQUIRES(shard.mutex)
  // contracts on AcquireFrame/PickVictim plus lexical MutexLock scopes at
  // every other touch point. `page` bytes are touched only while the frame
  // is pinned; concurrent access to one pinned page is the *caller's*
  // contract (readers may share, writers must be exclusive — the parallel
  // query paths only ever read shared pages). `dirty` is atomic because
  // MarkDirty writes it under a pin but outside the shard lock.
  struct Frame {
    Page page;
    PageId id = kInvalidPageId;
    int pins = 0;
    // Written while pinned (MarkDirty) and read/cleared under the shard
    // lock (eviction, flush); atomic so the two never race.
    std::atomic<bool> dirty{false};
    // Which shard owns this frame (fixed at construction).
    uint32_t shard = 0;
    // Position in the shard's queue when enqueued; only meaningful if
    // in_queue.
    std::list<size_t>::iterator queue_pos;
    bool in_queue = false;
    // CLOCK: referenced since the hand last passed.
    bool referenced = false;
  };

  /// One slice of the frame table with its own lock and replacement state.
  struct Shard {
    util::Mutex mutex;
    std::unordered_map<PageId, size_t> resident PROBE_GUARDED_BY(mutex);
    // kLru: front = least recently unpinned. kFifo: front = oldest load.
    // kClock: ignored (the hand sweeps the shard's frame range directly).
    std::list<size_t> queue PROBE_GUARDED_BY(mutex);
    std::vector<size_t> free_frames PROBE_GUARDED_BY(mutex);
    size_t begin = 0;  // first frame index owned by this shard
    size_t end = 0;    // one past the last
    size_t clock_hand PROBE_GUARDED_BY(mutex) = 0;
  };

  Shard& ShardFor(PageId id);
  void Unpin(size_t frame);
  // A free or evictable frame of `shard`, detached from its maps.
  size_t AcquireFrame(Shard& shard) PROBE_REQUIRES(shard.mutex);
  // Policy-specific choice among the shard's unpinned frames.
  size_t PickVictim(Shard& shard) PROBE_REQUIRES(shard.mutex);

  Pager* pager_;
  size_t capacity_;
  EvictionPolicy policy_;
  std::unique_ptr<Frame[]> frames_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // Serializes pager access (Allocate/Read/Write). Lock hierarchy:
  // shard.mutex → io_mutex_ — always acquired after a shard lock, never
  // before one, and never while holding another shard's lock.
  util::Mutex io_mutex_;

  // The stats are obs::Counters (wait-free relaxed atomics) so concurrent
  // snapshots — stats() from a monitoring thread, a registry collector —
  // never race the query workers updating them.
  obs::Counter fetches_;
  obs::Counter hits_;
  obs::Counter misses_;
  obs::Counter writebacks_;
  obs::Counter evictions_;
  obs::Counter pin_waits_;
};

/// Publishes `pool`'s counters into `registry` as the
/// `probe_bufferpool_*_total` families, labeled {pool="<name>"}. The
/// returned handle unregisters on destruction and must not outlive the
/// pool.
[[nodiscard]] obs::Registry::CollectorHandle RegisterPoolMetrics(
    obs::Registry& registry, const std::string& name, const BufferPool& pool);

}  // namespace probe::storage

#endif  // PROBE_STORAGE_BUFFER_POOL_H_
