#ifndef PROBE_STORAGE_BUFFER_POOL_H_
#define PROBE_STORAGE_BUFFER_POOL_H_

#include <cassert>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "storage/page.h"
#include "storage/pager.h"

/// \file
/// Buffer pool with pluggable replacement (LRU default).
///
/// Section 4 argues that "the LRU buffering strategy will work well because
/// of our reliance on merging in AG algorithms: each page is accessed at
/// most once, its contents are processed, and then the page will not be
/// needed again for the rest of the merge." The pool's hit/miss counters
/// let the benches verify that claim directly — and the FIFO and CLOCK
/// policies exist so the claim can be tested against alternatives rather
/// than assumed.

namespace probe::storage {

/// Page replacement policy.
enum class EvictionPolicy {
  /// Least recently used (the paper's choice): victims ordered by last
  /// unpin.
  kLru,
  /// First in, first out: victims ordered by load time; hits don't reorder.
  kFifo,
  /// Second chance: a circular sweep that spares pages referenced since
  /// the hand last passed.
  kClock,
};

/// Buffer pool counters.
struct BufferPoolStats {
  /// Logical page requests (Fetch calls).
  uint64_t fetches = 0;
  /// Requests satisfied from a resident frame.
  uint64_t hits = 0;
  /// Requests that caused a physical read.
  uint64_t misses = 0;
  /// Dirty frames written back on eviction or flush.
  uint64_t writebacks = 0;
  /// Frames evicted.
  uint64_t evictions = 0;

  void Reset() { *this = BufferPoolStats{}; }
};

class BufferPool;

/// RAII pin on a buffered page. While a PageRef is alive, the frame cannot
/// be evicted. Mark dirty through MarkDirty() before mutating the page.
class PageRef {
 public:
  PageRef() : pool_(nullptr), frame_(0) {}
  PageRef(PageRef&& other) noexcept;
  PageRef& operator=(PageRef&& other) noexcept;
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  ~PageRef();

  /// The buffered page. Valid only while the ref is non-null.
  Page& page();
  const Page& page() const;

  /// Flags the frame for write-back on eviction/flush.
  void MarkDirty();

  /// True when this ref holds a pinned frame.
  bool valid() const { return pool_ != nullptr; }

  /// Releases the pin early.
  void Release();

 private:
  friend class BufferPool;
  PageRef(BufferPool* pool, size_t frame) : pool_(pool), frame_(frame) {}

  BufferPool* pool_;
  size_t frame_;
};

/// Fixed-capacity page cache over a Pager.
class BufferPool {
 public:
  /// `capacity` is the number of resident frames; must be >= 1. The pager
  /// must outlive the pool.
  BufferPool(Pager* pager, size_t capacity,
             EvictionPolicy policy = EvictionPolicy::kLru);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;
  ~BufferPool();

  /// Returns a pinned reference to page `id`, reading it from the pager on
  /// a miss. Asserts if all frames are pinned.
  PageRef Fetch(PageId id);

  /// Allocates a fresh page on the pager and returns it pinned (and dirty).
  PageRef New(PageId* id_out);

  /// Writes back all dirty frames (they stay resident).
  void FlushAll();

  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  size_t capacity() const { return capacity_; }

 private:
  friend class PageRef;

  struct Frame {
    Page page;
    PageId id = kInvalidPageId;
    int pins = 0;
    bool dirty = false;
    // Position in queue_ when enqueued; only meaningful if in_queue.
    std::list<size_t>::iterator queue_pos;
    bool in_queue = false;
    // CLOCK: referenced since the hand last passed.
    bool referenced = false;
  };

  void Unpin(size_t frame);
  size_t AcquireFrame();  // a free or evictable frame, detached from maps
  size_t PickVictim();    // policy-specific choice among unpinned frames

  Pager* pager_;
  size_t capacity_;
  EvictionPolicy policy_;
  std::vector<Frame> frames_;
  std::vector<size_t> free_frames_;
  std::unordered_map<PageId, size_t> resident_;
  // kLru: front = least recently unpinned. kFifo: front = oldest load.
  // kClock: ignored (the hand sweeps frames_ directly).
  std::list<size_t> queue_;
  size_t clock_hand_ = 0;
  BufferPoolStats stats_;
};

}  // namespace probe::storage

#endif  // PROBE_STORAGE_BUFFER_POOL_H_
