#ifndef PROBE_STORAGE_WAL_H_
#define PROBE_STORAGE_WAL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "storage/page.h"
#include "util/single_writer.h"

/// \file
/// Write-ahead log: the durability substrate under the paged storage.
///
/// The paper's thesis is that z-order spatial search rides on "ordinary
/// database machinery"; a real DBMS's ordinary machinery includes a
/// recovery log. This WAL is the classic physical-redo design:
///
///   * Records are appended sequentially, each stamped with a monotonically
///     increasing LSN and a CRC-32 over everything after the checksum
///     field, so recovery can distinguish a complete record from the torn
///     tail a crash mid-append leaves behind.
///   * Page-image records carry the full after-image of one page (physical
///     redo is idempotent: replaying twice lands on the same bytes).
///   * Commit records mark a consistent boundary. Recovery replays page
///     images only up to the last durable commit; images after it belong
///     to an unfinished batch and are discarded, which is what makes a
///     batch of B-tree mutations atomic.
///   * Checkpoint records open a fresh log: once every page up to the
///     checkpoint has been forced to the database file, the log is
///     rewritten to contain just the checkpoint (with the application's
///     metadata), so the log's length tracks the write rate since the last
///     checkpoint, not the database's lifetime.
///
/// Record layout (little-endian, packed by explicit serialization):
///
///   +--------+--------+--------+------+-----------------+
///   | crc:4  | len:4  | lsn:8  | type | payload (len B) |
///   +--------+--------+--------+------+-----------------+
///            ^~~~~~~~~~~~ crc covers [len .. payload end)
///
/// Commit and checkpoint payloads are `page_count` (the pager's size at
/// the boundary) followed by an opaque metadata blob — the index layer
/// serializes its root/shape there, so the log is self-contained: opening
/// a database is "recover, read the last metadata, attach".
///
/// Fault injection. Crash testing needs to kill the engine at every record
/// boundary, deterministically. A WalFaultPlan arms the log to stop (or
/// tear) the Nth appended record; once tripped the log is dead() and every
/// later append or sync is a no-op returning failure, exactly like a
/// process that lost its disk. Tests then reopen from the files alone.

namespace probe::storage {

/// WAL record types.
enum class WalRecordType : uint8_t {
  /// Full after-image of one page. Payload: page id (4B) + Page::kSize
  /// bytes.
  kPageImage = 1,
  /// Batch boundary. Payload: page_count (4B) + metadata blob.
  kCommit = 2,
  /// Log rewrite boundary. Payload: page_count (4B) + metadata blob.
  kCheckpoint = 3,
};

/// Deterministic crash plan for a Wal (see file comment).
struct WalFaultPlan {
  /// Records appended successfully before the fault trips; the
  /// (fail_after_records+1)-th append is the victim. ~0 = never.
  uint64_t fail_after_records = ~0ull;

  /// Bytes of the victim record that still reach the file (a torn tail);
  /// 0 = the record vanishes entirely (crash just before the write).
  /// Values >= the record size are clamped to leave at least one byte
  /// missing, so the victim is always incomplete.
  uint64_t tear_bytes = 0;
};

/// One decoded record, as recovery sees it.
struct WalRecord {
  uint64_t lsn = 0;
  WalRecordType type = WalRecordType::kPageImage;
  /// kPageImage: the page id; unused otherwise.
  PageId page_id = kInvalidPageId;
  /// kPageImage: the page bytes. kCommit/kCheckpoint: the metadata blob.
  std::vector<uint8_t> payload;
  /// kCommit/kCheckpoint: the pager's page count at the boundary.
  uint32_t page_count = 0;
  /// Byte offset one past this record in the log file.
  uint64_t end_offset = 0;
};

/// Append counters of a Wal.
struct WalStats {
  uint64_t records = 0;
  uint64_t bytes = 0;
  uint64_t syncs = 0;
};

/// Append-only log file. Not thread-safe (single-writer, like the B-tree).
class Wal {
 public:
  /// Opens (or creates) the log at `path`, appending after any existing
  /// content. `truncate` starts an empty log. The next LSN continues from
  /// the last valid record already in the file.
  explicit Wal(const std::string& path, bool truncate = false);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// True iff the file opened; all appends require it.
  bool ok() const { return fd_ >= 0; }

  /// True once an armed fault has tripped; every later mutation fails.
  bool dead() const { return dead_; }

  /// Arms (or clears, with the default plan) the crash plan.
  void SetFaultPlan(const WalFaultPlan& plan) { fault_ = plan; }

  /// Appends a page after-image. Returns the record's LSN, or 0 if the log
  /// is dead (LSNs start at 1).
  uint64_t AppendPageImage(PageId id, const Page& page);

  /// Appends a commit boundary and flushes it to disk. Returns the LSN, or
  /// 0 on a dead log (the batch is then not durable).
  uint64_t AppendCommit(uint32_t page_count, std::span<const uint8_t> meta);

  /// Replaces the log with a single checkpoint record, atomically: the new
  /// content is written to a temp file, fsynced, and renamed over `path`.
  /// LSNs keep counting. Returns the LSN, or 0 on a dead log.
  uint64_t RewriteWithCheckpoint(uint32_t page_count,
                                 std::span<const uint8_t> meta);

  /// fsyncs the log file. Returns false on a dead log.
  bool Sync();

  /// Next LSN to be assigned.
  uint64_t next_lsn() const { return next_lsn_; }

  /// Current log size in bytes (as appended; the file may be shorter after
  /// a tripped tear fault).
  uint64_t size_bytes() const { return offset_; }

  const WalStats& stats() const { return stats_; }

  const std::string& path() const { return path_; }

 private:
  // Serializes and appends one record; applies the fault plan.
  uint64_t AppendRecord(WalRecordType type,
                        std::span<const uint8_t> header_extra,
                        std::span<const uint8_t> payload);

  std::string path_;
  int fd_ = -1;
  uint64_t next_lsn_ = 1;
  uint64_t offset_ = 0;
  bool dead_ = false;
  WalFaultPlan fault_;
  WalStats stats_;
  // Audit-build proof of the "single-writer" line above: every mutating
  // entry point claims this; overlapping claims abort. See single_writer.h
  // for why this is a runtime check and not a mutex annotation.
  util::SingleWriterGuard writer_guard_;
};

/// Forward scanner over a WAL file, stopping at the first record whose
/// header or checksum does not validate — the torn tail.
class WalReader {
 public:
  explicit WalReader(const std::string& path);
  ~WalReader();

  WalReader(const WalReader&) = delete;
  WalReader& operator=(const WalReader&) = delete;

  /// False when the file does not exist (an empty log is ok()).
  bool ok() const { return fd_ >= 0; }

  /// Decodes the next valid record into `*out`. Returns false at the end
  /// of the valid prefix (clean end, torn record, or bad CRC alike).
  bool Next(WalRecord* out);

  /// Byte offset one past the last successfully decoded record: the length
  /// recovery truncates the log to.
  uint64_t valid_bytes() const { return valid_bytes_; }

 private:
  int fd_ = -1;
  uint64_t offset_ = 0;
  uint64_t valid_bytes_ = 0;
  uint64_t file_size_ = 0;
  uint64_t prev_lsn_ = 0;  // LSNs must strictly increase within one log
};

}  // namespace probe::storage

#endif  // PROBE_STORAGE_WAL_H_
