#ifndef PROBE_STORAGE_WAL_H_
#define PROBE_STORAGE_WAL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "storage/page.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

/// \file
/// Write-ahead log: the durability substrate under the paged storage.
///
/// The paper's thesis is that z-order spatial search rides on "ordinary
/// database machinery"; a real DBMS's ordinary machinery includes a
/// recovery log. This WAL is the classic physical-redo design:
///
///   * Records are appended sequentially, each stamped with a monotonically
///     increasing LSN and a CRC-32 over everything after the checksum
///     field, so recovery can distinguish a complete record from the torn
///     tail a crash mid-append leaves behind.
///   * Page-image records carry the full after-image of one page (physical
///     redo is idempotent: replaying twice lands on the same bytes).
///   * Commit records mark a consistent boundary. Recovery replays page
///     images only up to the last durable commit; images after it belong
///     to an unfinished batch and are discarded, which is what makes a
///     batch of B-tree mutations atomic.
///   * Checkpoint records open a fresh log: once every page up to the
///     checkpoint has been forced to the database file, the log is
///     rewritten to contain just the checkpoint (with the application's
///     metadata), so the log's length tracks the write rate since the last
///     checkpoint, not the database's lifetime.
///
/// Record layout (little-endian, packed by explicit serialization):
///
///   +--------+--------+--------+------+-----------------+
///   | crc:4  | len:4  | lsn:8  | type | payload (len B) |
///   +--------+--------+--------+------+-----------------+
///            ^~~~~~~~~~~~ crc covers [len .. payload end)
///
/// Commit and checkpoint payloads are `page_count` (the pager's size at
/// the boundary) followed by an opaque metadata blob — the index layer
/// serializes its root/shape there, so the log is self-contained: opening
/// a database is "recover, read the last metadata, attach".
///
/// Concurrency: the log buffer and group commit. The Wal is internally
/// synchronized — multiple writer threads may append and commit
/// concurrently. Appends serialize records into an in-memory log buffer
/// under the log mutex (assigning LSNs in buffer order) without touching
/// the file; the buffer reaches the file at sync points, as one pwrite.
/// Durability is leader–follower: a committer calls GroupCommit(lsn) and,
/// if no sync is in flight, becomes the *leader* — it may linger up to the
/// group-commit delay for more commits to queue, then flushes the buffer
/// and fsyncs once, covering its own commit and every follower whose
/// record made the flush. Followers just wait for the durable LSN to pass
/// theirs. One fsync thus acks a whole group, and because the fsync runs
/// outside the log mutex, other writers keep appending (and the B-tree
/// keeps mutating) while the disk works — the two effects behind the
/// sub-1.5x WAL tax BENCH_commit.json gates.
///
/// Fault injection. Crash testing needs to kill the engine at every record
/// boundary, deterministically. A WalFaultPlan arms the log to stop (or
/// tear) the Nth appended record; once tripped the log is dead() and every
/// later append or sync is a no-op returning failure, exactly like a
/// process that lost its disk. The fault applies at *append* time: the
/// buffered prefix is flushed to the file first (those records were
/// appended successfully; whether they are durable is still governed by
/// which syncs completed), then up to tear_bytes of the victim, so the
/// on-disk picture is byte-identical to the pre-buffering design. Tests
/// then reopen from the files alone.

namespace probe::storage {

/// WAL record types.
enum class WalRecordType : uint8_t {
  /// Full after-image of one page. Payload: page id (4B) + Page::kSize
  /// bytes.
  kPageImage = 1,
  /// Batch boundary. Payload: page_count (4B) + metadata blob.
  kCommit = 2,
  /// Log rewrite boundary. Payload: page_count (4B) + metadata blob.
  kCheckpoint = 3,
};

/// Deterministic crash plan for a Wal (see file comment).
struct WalFaultPlan {
  /// Records appended successfully before the fault trips; the
  /// (fail_after_records+1)-th append is the victim. ~0 = never.
  uint64_t fail_after_records = ~0ull;

  /// Bytes of the victim record that still reach the file (a torn tail);
  /// 0 = the record vanishes entirely (crash just before the write).
  /// Values >= the record size are clamped to leave at least one byte
  /// missing, so the victim is always incomplete.
  uint64_t tear_bytes = 0;
};

/// One decoded record, as recovery sees it.
struct WalRecord {
  uint64_t lsn = 0;
  WalRecordType type = WalRecordType::kPageImage;
  /// kPageImage: the page id; unused otherwise.
  PageId page_id = kInvalidPageId;
  /// kPageImage: the page bytes. kCommit/kCheckpoint: the metadata blob.
  std::vector<uint8_t> payload;
  /// kCommit/kCheckpoint: the pager's page count at the boundary.
  uint32_t page_count = 0;
  /// Byte offset one past this record in the log file.
  uint64_t end_offset = 0;
};

/// Append counters of a Wal.
struct WalStats {
  uint64_t records = 0;
  uint64_t bytes = 0;
  uint64_t syncs = 0;
  /// Syncs that covered at least one commit record.
  uint64_t group_syncs = 0;
  /// Commit records covered by those syncs; group_commits / group_syncs is
  /// the mean group size (1.0 = no batching happened).
  uint64_t group_commits = 0;
  /// Largest commit group one fsync covered.
  uint64_t max_group = 0;
};

/// Append-only log file with an in-memory log buffer and leader–follower
/// group commit. Thread-safe: writers append and commit concurrently (see
/// file comment).
class Wal {
 public:
  /// Opens (or creates) the log at `path`, appending after any existing
  /// content. `truncate` starts an empty log. The next LSN continues from
  /// the last valid record already in the file.
  explicit Wal(const std::string& path, bool truncate = false);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// True iff the file opened; all appends require it.
  bool ok() const { return fd_ >= 0; }

  /// True once an armed fault has tripped; every later mutation fails.
  bool dead() const { return dead_.load(std::memory_order_acquire); }

  /// Arms (or clears, with the default plan) the crash plan. Not
  /// synchronized against in-flight appends: arm before handing the log to
  /// writer threads (every test does).
  void SetFaultPlan(const WalFaultPlan& plan) { fault_ = plan; }

  /// Leader linger: how long a group-commit leader waits for more commits
  /// to join its fsync. 0 (the default) syncs immediately — single-writer
  /// behavior. Groups still form under concurrency even at 0, because
  /// commits queued while a sync is in flight share the next one. An
  /// explicit Sync() or RewriteWithCheckpoint() ends an in-progress
  /// linger immediately — explicit syncs never pay the delay.
  void SetGroupCommitDelay(std::chrono::microseconds delay);
  std::chrono::microseconds group_commit_delay() const;

  /// Appends a page after-image to the log buffer. Returns the record's
  /// LSN, or 0 if the log is dead (LSNs start at 1).
  uint64_t AppendPageImage(PageId id, const Page& page);

  /// Appends a commit boundary and waits for it to become durable (via
  /// GroupCommit). Returns the LSN, or 0 on a dead log (the batch is then
  /// not durable).
  uint64_t AppendCommit(uint32_t page_count, std::span<const uint8_t> meta);

  /// Appends a commit boundary to the log buffer *without* waiting for
  /// durability. Returns the LSN to later pass to GroupCommit, or 0 on a
  /// dead log. The commit is not durable (and must not be acked) until
  /// GroupCommit(lsn) returns true.
  uint64_t AppendCommitDeferred(uint32_t page_count,
                                std::span<const uint8_t> meta);

  /// Blocks until every record up to `lsn` is durable, electing this
  /// thread leader for one flush+fsync if none is in flight (see file
  /// comment). Returns false on a dead log. `lsn` of 0 returns false.
  bool GroupCommit(uint64_t lsn);

  /// Replaces the log with a single checkpoint record, atomically: the new
  /// content is written to a temp file, fsynced, and renamed over `path`.
  /// LSNs keep counting. Returns the LSN, or 0 on a dead log. Caller must
  /// guarantee no concurrent appends (checkpoints run at a quiescent
  /// commit boundary); in-flight GroupCommit waiters are drained first.
  uint64_t RewriteWithCheckpoint(uint32_t page_count,
                                 std::span<const uint8_t> meta);

  /// Flushes the log buffer and fsyncs the file; on return every record
  /// appended before the call is durable. Returns false on a dead log.
  bool Sync();

  /// Flushes the log buffer to the file without fsyncing (records become
  /// visible to a WalReader, durability still pends). Returns false on a
  /// dead log.
  bool Flush();

  /// Next LSN to be assigned.
  uint64_t next_lsn() const;

  /// Highest LSN known durable (covered by a completed fsync).
  uint64_t durable_lsn() const;

  /// Current log size in bytes (as appended, including still-buffered
  /// records; the file may be shorter after a tripped tear fault).
  uint64_t size_bytes() const;

  /// Snapshot of the append/sync counters.
  WalStats stats() const;

  const std::string& path() const { return path_; }

 private:
  // Serializes and appends one record to the log buffer; applies the
  // fault plan.
  uint64_t AppendRecord(WalRecordType type,
                        std::span<const uint8_t> header_extra,
                        std::span<const uint8_t> payload);

  // pwrites the buffered records to the file. On short write the log goes
  // dead. True on success (or an already-empty buffer).
  bool FlushLocked() PROBE_REQUIRES(mu_);

  // One leader turn: flush the buffer, fsync outside the lock, advance
  // durable_lsn_, account the commit group. Requires sync_active_ to have
  // been claimed by the caller; clears it and notifies before returning.
  // Returns false on a dead log.
  bool LeaderSyncLocked() PROBE_REQUIRES(mu_);

  void MarkDeadLocked() PROBE_REQUIRES(mu_);

  std::string path_;
  int fd_ = -1;
  WalFaultPlan fault_;
  // dead() is polled lock-free by ok() checks up the stack; transitions
  // only false -> true, always under mu_.
  std::atomic<bool> dead_{false};

  mutable util::Mutex mu_;
  // Signaled when durable_lsn_ advances, a sync turn ends, or the log
  // dies.
  util::CondVar commit_cv_;

  // The log buffer: serialized records not yet written to the file.
  std::vector<uint8_t> buffer_ PROBE_GUARDED_BY(mu_);
  uint64_t next_lsn_ PROBE_GUARDED_BY(mu_) = 1;
  // Logical end of the log (file bytes + buffered bytes).
  uint64_t offset_ PROBE_GUARDED_BY(mu_) = 0;
  // Where the next flush pwrites (file bytes only).
  uint64_t file_offset_ PROBE_GUARDED_BY(mu_) = 0;
  // Highest LSN written to the file / covered by an fsync.
  uint64_t flushed_lsn_ PROBE_GUARDED_BY(mu_) = 0;
  uint64_t durable_lsn_ PROBE_GUARDED_BY(mu_) = 0;
  // Commit records appended since the last sync claimed its group.
  uint64_t pending_commits_ PROBE_GUARDED_BY(mu_) = 0;
  // True while one thread owns the flush+fsync turn (the leader).
  bool sync_active_ PROBE_GUARDED_BY(mu_) = false;
  // Threads blocked in Sync()/RewriteWithCheckpoint() waiting for the
  // current turn to end. A lingering leader cuts its group-commit delay
  // short when this is nonzero: an explicit sync wants durability *now*,
  // so there is nothing to gain by waiting for more commits to join.
  uint64_t sync_waiters_ PROBE_GUARDED_BY(mu_) = 0;
  std::chrono::microseconds group_delay_ PROBE_GUARDED_BY(mu_){0};
  WalStats stats_ PROBE_GUARDED_BY(mu_);
};

/// Forward scanner over a WAL file, stopping at the first record whose
/// header or checksum does not validate — the torn tail.
class WalReader {
 public:
  explicit WalReader(const std::string& path);
  ~WalReader();

  WalReader(const WalReader&) = delete;
  WalReader& operator=(const WalReader&) = delete;

  /// False when the file does not exist (an empty log is ok()).
  bool ok() const { return fd_ >= 0; }

  /// Decodes the next valid record into `*out`. Returns false at the end
  /// of the valid prefix (clean end, torn record, or bad CRC alike).
  bool Next(WalRecord* out);

  /// Byte offset one past the last successfully decoded record: the length
  /// recovery truncates the log to.
  uint64_t valid_bytes() const { return valid_bytes_; }

 private:
  int fd_ = -1;
  uint64_t offset_ = 0;
  uint64_t valid_bytes_ = 0;
  uint64_t file_size_ = 0;
  uint64_t prev_lsn_ = 0;  // LSNs must strictly increase within one log
};

}  // namespace probe::storage

#endif  // PROBE_STORAGE_WAL_H_
