#include "storage/fault_pager.h"

#include <cstring>

#include "util/rng.h"

namespace probe::storage {

PageId FaultInjectingPager::Allocate() {
  if (crashed_) return base_->page_count() + phantom_allocs_++;
  return base_->Allocate();
}

void FaultInjectingPager::Read(PageId id, Page* out) {
  // Reads stay truthful even after the crash: what's on the (simulated)
  // platter is what a post-mortem sees. Phantom pages read as zeros.
  if (id >= base_->page_count()) {
    out->Clear();
    return;
  }
  base_->Read(id, out);
}

void FaultInjectingPager::Write(PageId id, const Page& page) {
  if (crashed_) return;
  if (plan_.kind != FaultPlan::Kind::kNone &&
      writes_ >= plan_.fail_after_writes) {
    crashed_ = true;
    if (plan_.kind == FaultPlan::Kind::kShortWrite &&
        id < base_->page_count()) {
      // Seed the cut from the plan and the op count so every (plan,
      // workload) pair tears deterministically.
      uint64_t state = plan_.seed ^ (writes_ * 0x9E3779B97F4A7C15ull);
      const size_t cut =
          1 + static_cast<size_t>(util::SplitMix64(state) % (Page::kSize - 1));
      Page torn;
      base_->Read(id, &torn);
      std::memcpy(torn.data(), page.data(), cut);
      base_->Write(id, torn);
    }
    return;
  }
  ++writes_;
  base_->Write(id, page);
}

uint32_t FaultInjectingPager::page_count() const {
  return base_->page_count() + phantom_allocs_;
}

void FaultInjectingPager::Sync() {
  if (crashed_) return;
  base_->Sync();
}

}  // namespace probe::storage
