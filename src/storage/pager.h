#ifndef PROBE_STORAGE_PAGER_H_
#define PROBE_STORAGE_PAGER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/page.h"

/// \file
/// The simulated disk: page allocation plus physical I/O accounting.

namespace probe::storage {

/// Physical I/O counters of a pager.
struct PagerStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t allocations = 0;

  void Reset() { *this = PagerStats{}; }
};

/// Abstract page store. Implementations must tolerate interleaved reads and
/// writes of any allocated page.
class Pager {
 public:
  virtual ~Pager() = default;

  /// Allocates a zeroed page and returns its id.
  virtual PageId Allocate() = 0;

  /// Copies page `id` into `*out`. `id` must be allocated.
  virtual void Read(PageId id, Page* out) = 0;

  /// Stores `page` as the contents of `id`. `id` must be allocated.
  virtual void Write(PageId id, const Page& page) = 0;

  /// Number of pages allocated so far.
  virtual uint32_t page_count() const = 0;

  /// Cumulative physical I/O counters.
  virtual const PagerStats& stats() const = 0;

  /// Zeroes the I/O counters (page contents are untouched).
  virtual void ResetStats() = 0;

  /// True while the pager can serve requests. A plain pager is always
  /// healthy; file-backed pagers report open failures here and the
  /// fault-injecting wrapper reports an injected crash.
  virtual bool ok() const { return true; }

  /// Makes prior writes durable. A no-op for memory-backed pagers;
  /// file-backed ones fsync.
  virtual void Sync() {}
};

/// In-memory pager: the simulated disk used throughout the reproduction.
class MemPager final : public Pager {
 public:
  MemPager() = default;

  // Owns its pages; not copyable.
  MemPager(const MemPager&) = delete;
  MemPager& operator=(const MemPager&) = delete;

  PageId Allocate() override;
  void Read(PageId id, Page* out) override;
  void Write(PageId id, const Page& page) override;
  uint32_t page_count() const override {
    return static_cast<uint32_t>(pages_.size());
  }
  const PagerStats& stats() const override { return stats_; }
  void ResetStats() override { stats_.Reset(); }

 private:
  std::vector<std::unique_ptr<Page>> pages_;
  PagerStats stats_;
};

}  // namespace probe::storage

#endif  // PROBE_STORAGE_PAGER_H_
