#include "storage/file_pager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cassert>

#include "obs/runtime_metrics.h"

namespace probe::storage {

FilePager::FilePager(const std::string& path, bool truncate) {
  int flags = O_RDWR | O_CREAT;
  if (truncate) flags |= O_TRUNC;
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) return;
  const off_t size = ::lseek(fd_, 0, SEEK_END);
  page_count_ = static_cast<uint32_t>(static_cast<uint64_t>(size) / Page::kSize);
}

FilePager::~FilePager() {
  if (fd_ >= 0) ::close(fd_);
}

PageId FilePager::Allocate() {
  assert(ok());
  const PageId id = page_count_++;
  // Extend the file with a zeroed page so reads of fresh pages are valid.
  Page zero;
  const ssize_t written =
      ::pwrite(fd_, zero.data(), Page::kSize,
               static_cast<off_t>(id) * static_cast<off_t>(Page::kSize));
  assert(written == static_cast<ssize_t>(Page::kSize));
  (void)written;
  ++stats_.allocations;
  return id;
}

void FilePager::Read(PageId id, Page* out) {
  assert(ok());
  assert(id < page_count_);
  const ssize_t bytes =
      ::pread(fd_, out->data(), Page::kSize,
              static_cast<off_t>(id) * static_cast<off_t>(Page::kSize));
  assert(bytes == static_cast<ssize_t>(Page::kSize));
  (void)bytes;
  ++stats_.reads;
  if (obs::Enabled()) {
    obs::StorageMetrics& m = obs::StorageMetrics::Default();
    m.pager_reads->Increment();
    m.pager_bytes_read->Increment(Page::kSize);
  }
}

void FilePager::Write(PageId id, const Page& page) {
  assert(ok());
  assert(id < page_count_);
  const ssize_t bytes =
      ::pwrite(fd_, page.data(), Page::kSize,
               static_cast<off_t>(id) * static_cast<off_t>(Page::kSize));
  assert(bytes == static_cast<ssize_t>(Page::kSize));
  (void)bytes;
  ++stats_.writes;
  if (obs::Enabled()) {
    obs::StorageMetrics& m = obs::StorageMetrics::Default();
    m.pager_writes->Increment();
    m.pager_bytes_written->Increment(Page::kSize);
  }
}

void FilePager::Sync() {
  assert(ok());
  // invariant-lint waiver(raw-fsync): this is Pager::Sync's contract —
  // the checkpoint force path syncs the *base* file here; WAL durability
  // still flows exclusively through storage/wal.
  ::fsync(fd_);
  if (obs::Enabled()) obs::StorageMetrics::Default().pager_syncs->Increment();
}

void FilePager::TruncateTo(uint32_t page_count) {
  assert(ok());
  const off_t size =
      static_cast<off_t>(page_count) * static_cast<off_t>(Page::kSize);
  [[maybe_unused]] const int rc = ::ftruncate(fd_, size);
  assert(rc == 0);
  page_count_ = page_count;
}

}  // namespace probe::storage
