#ifndef PROBE_STORAGE_RECOVERY_H_
#define PROBE_STORAGE_RECOVERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/file_pager.h"

/// \file
/// Crash recovery: analysis + redo over the write-ahead log.
///
/// Opening a database is always `Recover(wal, base)` first. The protocol
/// (mirroring Wal's no-steal / force-on-checkpoint discipline — the base
/// file is only ever written during a checkpoint):
///
///   1. **Scan** the log front to back, validating each record's CRC and
///      LSN. The first failure marks the torn tail a crash left; the file
///      is truncated there so the damage cannot be misread twice.
///   2. **Analysis**: find the last commit or checkpoint record. Records
///      after it belong to an unfinished batch; they are discarded (the
///      log is truncated back to the boundary), which is what makes
///      batches atomic. The boundary's payload carries the committed page
///      count and the application metadata blob.
///   3. **Redo**: every page image at or before the boundary is replayed
///      into the base file in LSN order. Physical redo is idempotent —
///      recovering twice (or crashing during recovery and recovering
///      again) lands on the same bytes. The base file is then truncated
///      or extended to exactly the committed page count, wiping pages a
///      crashed checkpoint may have allocated past it, and fsynced.
///
/// A log that contains no boundary at all (e.g. only images of a batch
/// that never committed) recovers to the base file as-is with the log
/// emptied — the state of the last successful checkpoint.

namespace probe::storage {

/// What one recovery pass did.
struct RecoveryResult {
  /// False when there was no log (or an unreadable one): the base file is
  /// already the authoritative state.
  bool log_found = false;

  /// Valid records scanned (through the last boundary).
  uint64_t records_scanned = 0;

  /// Page images replayed into the base file.
  uint64_t records_redone = 0;

  /// Bytes cut off the end of the log: the torn tail plus any complete
  /// records of an unfinished batch.
  uint64_t bytes_truncated = 0;

  /// LSN of the recovered boundary record (0 when none existed).
  uint64_t boundary_lsn = 0;

  /// True when the boundary was a checkpoint (so redo had nothing to do
  /// unless images followed it — they cannot, checkpoints end a log).
  bool boundary_was_checkpoint = false;

  /// Committed page count restored to the base file (the base's own count
  /// when no boundary existed).
  uint32_t page_count = 0;

  /// The application metadata blob of the boundary record, empty when no
  /// boundary existed. The index layer deserializes its tree state here.
  std::vector<uint8_t> meta;
};

/// Recovers `base` from the log at `wal_path` (see file comment). The log
/// file is truncated to the recovered boundary; the base file is replayed,
/// sized to the committed page count, and fsynced. Safe to call on a clean
/// shutdown (the scan finds nothing to redo) and safe to call repeatedly.
RecoveryResult Recover(const std::string& wal_path, FilePager* base);

}  // namespace probe::storage

#endif  // PROBE_STORAGE_RECOVERY_H_
