#ifndef PROBE_STORAGE_SNAPSHOT_PAGER_H_
#define PROBE_STORAGE_SNAPSHOT_PAGER_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "storage/pager.h"
#include "storage/txn_pager.h"

/// \file
/// Read-only Pager view of a TxnPager frozen at one commit epoch.
///
/// A snapshot reader gets its own SnapshotPager (and its own BufferPool on
/// top — snapshots never share frames with the writer, so there is no
/// cache-level way for an uncommitted or newer page to leak into a pinned
/// view). Every Read forwards to TxnPager::ReadAtEpoch with the frozen
/// epoch; page_count() is the count the frozen commit recorded, so a
/// B-tree attached to this pager cannot even address pages allocated by
/// later batches. Mutating calls abort: a snapshot that writes is a logic
/// bug, not a recoverable condition.
///
/// Lifetime is managed by DurableIndex::Snapshot, which pins the epoch
/// (blocking version GC and checkpoint cut-over) for as long as the view
/// exists.

namespace probe::storage {

/// Immutable Pager facade over `txn` at (`epoch`, `page_count`).
class SnapshotPager final : public Pager {
 public:
  SnapshotPager(TxnPager* txn, uint64_t epoch, uint32_t page_count)
      : txn_(txn), epoch_(epoch), count_(page_count) {}

  PageId Allocate() override { Abort("Allocate"); }
  void Write(PageId, const Page&) override { Abort("Write"); }

  void Read(PageId id, Page* out) override {
    if (id >= count_) {
      // Out-of-range for the frozen state: a structural bug upstream.
      Abort("Read past frozen page count");
    }
    ++stats_.reads;
    txn_->ReadAtEpoch(id, epoch_, out);
  }

  uint32_t page_count() const override { return count_; }
  const PagerStats& stats() const override { return stats_; }
  void ResetStats() override { stats_.Reset(); }
  bool ok() const override { return txn_->ok(); }
  void Sync() override {}  // nothing to make durable in a read-only view

  uint64_t epoch() const { return epoch_; }

 private:
  [[noreturn]] static void Abort(const char* what) {
    std::fprintf(stderr, "SnapshotPager: %s on a read-only snapshot\n", what);
    std::abort();
  }

  TxnPager* txn_;
  const uint64_t epoch_;
  const uint32_t count_;
  PagerStats stats_;
};

}  // namespace probe::storage

#endif  // PROBE_STORAGE_SNAPSHOT_PAGER_H_
