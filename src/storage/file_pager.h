#ifndef PROBE_STORAGE_FILE_PAGER_H_
#define PROBE_STORAGE_FILE_PAGER_H_

#include <string>

#include "storage/pager.h"

/// \file
/// A file-backed pager: the simulated disk made durable.
///
/// Same contract as MemPager, but pages live in an ordinary file
/// (page id * Page::kSize is the file offset), so an index built through
/// a BufferPool can be flushed, the process restarted, and the tree
/// re-attached (see btree::BTree::Attach). Used by the persistence tests
/// and available to applications that want real files; the experiment
/// benches stay on MemPager because their metric — page accesses — is
/// medium-independent.

namespace probe::storage {

/// Pager over a file. Not thread-safe (matching the rest of the engine).
class FilePager final : public Pager {
 public:
  /// Opens (or creates) `path`. `truncate` wipes existing contents;
  /// otherwise existing pages become allocated pages 0..n-1.
  explicit FilePager(const std::string& path, bool truncate = false);
  ~FilePager() override;

  FilePager(const FilePager&) = delete;
  FilePager& operator=(const FilePager&) = delete;

  /// True iff the file opened successfully; all other calls require it.
  bool ok() const override { return fd_ >= 0; }

  PageId Allocate() override;
  void Read(PageId id, Page* out) override;
  void Write(PageId id, const Page& page) override;
  uint32_t page_count() const override { return page_count_; }
  const PagerStats& stats() const override { return stats_; }
  void ResetStats() override { stats_.Reset(); }

  /// Flushes the OS file buffers (fsync).
  void Sync() override;

  /// Shrinks (or, with zero pages, extends) the file to exactly
  /// `page_count` pages. Recovery uses this to discard pages a crashed
  /// checkpoint allocated past the last committed state.
  void TruncateTo(uint32_t page_count);

 private:
  int fd_ = -1;
  uint32_t page_count_ = 0;
  PagerStats stats_;
};

}  // namespace probe::storage

#endif  // PROBE_STORAGE_FILE_PAGER_H_
