#ifndef PROBE_STORAGE_FAULT_PAGER_H_
#define PROBE_STORAGE_FAULT_PAGER_H_

#include <cstdint>

#include "storage/pager.h"

/// \file
/// Deterministic fault injection at the page-I/O boundary.
///
/// The crash tier needs to kill the engine at chosen points and prove
/// recovery repairs whatever the kill left behind. FaultInjectingPager
/// wraps any Pager and, on the Nth write, either drops it (a process that
/// died just before the syscall) or tears it (a sector-granular partial
/// write — the first K bytes are new, the rest still old). After the
/// fault trips the pager is crashed(): every later mutation is silently
/// dropped and ok() turns false, so a TxnPager checkpoint running above
/// notices the disk died under it.
///
/// Everything is seeded: the same plan against the same workload tears
/// the same byte of the same page, so a failing crash point replays
/// exactly under a debugger.

namespace probe::storage {

/// What to inject, and when.
struct FaultPlan {
  enum class Kind {
    /// Never trips.
    kNone,
    /// The victim write is dropped whole.
    kFailStop,
    /// The victim write lands partially: a seeded cut in [1, kSize-1]
    /// splits new bytes from stale ones — a torn page.
    kShortWrite,
  };

  Kind kind = Kind::kNone;

  /// Writes that succeed before the fault trips; the next one is the
  /// victim.
  uint64_t fail_after_writes = ~0ull;

  /// Seeds the tear position for kShortWrite.
  uint64_t seed = 0;
};

/// Pager wrapper that injects one planned fault (see file comment).
class FaultInjectingPager final : public Pager {
 public:
  /// `base` must outlive the wrapper.
  explicit FaultInjectingPager(Pager* base) : base_(base) {}

  /// Arms (or, with a default plan, disarms) the fault. Does not reset
  /// crashed() — a tripped pager stays dead.
  void SetFaultPlan(const FaultPlan& plan) { plan_ = plan; }

  /// True once the fault has tripped.
  bool crashed() const { return crashed_; }

  /// Writes that reached the base so far (for sizing fail_after_writes
  /// sweeps).
  uint64_t writes_attempted() const { return writes_; }

  PageId Allocate() override;
  void Read(PageId id, Page* out) override;
  void Write(PageId id, const Page& page) override;
  uint32_t page_count() const override;
  const PagerStats& stats() const override { return base_->stats(); }
  void ResetStats() override { base_->ResetStats(); }
  bool ok() const override { return !crashed_ && base_->ok(); }
  void Sync() override;

 private:
  Pager* base_;
  FaultPlan plan_;
  bool crashed_ = false;
  uint64_t writes_ = 0;
  // Pages "allocated" after the crash (so callers that ignore the crash
  // keep getting distinct ids) — never reaches the base.
  uint32_t phantom_allocs_ = 0;
};

}  // namespace probe::storage

#endif  // PROBE_STORAGE_FAULT_PAGER_H_
