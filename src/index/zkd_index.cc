#include "index/zkd_index.h"

#include <algorithm>
#include <cassert>
#include <optional>

#include "decompose/generator.h"
#include "geometry/primitives.h"
#include "zorder/bigmin.h"
#include "zorder/shuffle.h"

namespace probe::index {

namespace {

using btree::LeafEntry;
using btree::ZKey;
using geometry::GridBox;
using geometry::GridPoint;
using zorder::ZValue;

// Full-resolution key of a point.
ZKey PointKey(const zorder::GridSpec& grid, const GridPoint& point) {
  return ZKey::FromZValue(Shuffle(grid, point.coords()));
}

// Full-resolution key whose integer value is `z`.
ZKey IntegerKey(const zorder::GridSpec& grid, uint64_t z) {
  return ZKey::FromZValue(ZValue::FromInteger(z, grid.total_bits()));
}

void FillCursorStats(const btree::BTree::Cursor& cursor, QueryStats* stats) {
  if (stats == nullptr) return;
  stats->leaf_pages = cursor.leaf_loads();
  stats->internal_pages = cursor.internal_loads();
  stats->entries_on_touched_pages = cursor.leaf_entries_seen();
}

}  // namespace

ZkdIndex::ZkdIndex(const zorder::GridSpec& grid, storage::BufferPool* pool,
                   const btree::BTreeConfig& config)
    : grid_(grid), tree_(pool, config) {
  assert(grid_.Valid());
}

ZkdIndex ZkdIndex::Build(const zorder::GridSpec& grid,
                         storage::BufferPool* pool,
                         std::span<const PointRecord> points,
                         const btree::BTreeConfig& config, double fill) {
  std::vector<LeafEntry> entries;
  entries.reserve(points.size());
  for (const PointRecord& record : points) {
    entries.push_back(LeafEntry{PointKey(grid, record.point), record.id});
  }
  std::sort(entries.begin(), entries.end(),
            [](const LeafEntry& a, const LeafEntry& b) {
              if (a.key != b.key) return a.key < b.key;
              return a.payload < b.payload;
            });
  ZkdIndex index(grid, pool, config);
  index.tree_ = btree::BTree::BulkLoad(pool, entries, config, fill);
  return index;
}

ZkdIndex ZkdIndex::BuildExternal(const zorder::GridSpec& grid,
                                 storage::BufferPool* pool,
                                 std::span<const PointRecord> points,
                                 storage::Pager* scratch,
                                 size_t memory_budget,
                                 const btree::BTreeConfig& config, double fill,
                                 btree::ExternalSortStats* sort_stats) {
  btree::ExternalSorter sorter(scratch, memory_budget);
  for (const PointRecord& record : points) {
    sorter.Add(LeafEntry{PointKey(grid, record.point), record.id});
  }
  btree::BTree::BulkBuilder builder(pool, config, fill);
  sorter.Drain([&](const LeafEntry& entry) { builder.Add(entry); });
  if (sort_stats != nullptr) *sort_stats = sorter.stats();
  ZkdIndex index(grid, pool, config);
  index.tree_ = builder.Finish();
  return index;
}

void ZkdIndex::Insert(const GridPoint& point, uint64_t id) {
  tree_.Insert(PointKey(grid_, point), id);
}

bool ZkdIndex::Delete(const GridPoint& point, uint64_t id) {
  return tree_.Delete(PointKey(grid_, point), id);
}

std::vector<uint64_t> ZkdIndex::RangeSearch(const GridBox& box,
                                            QueryStats* stats,
                                            const SearchOptions& options) const {
  if (options.merge == SearchOptions::Merge::kBigMin) {
    return SearchBigMin(box, stats);
  }
  const geometry::BoxObject object(box);
  return SearchDecomposed(object, stats, options);
}

std::vector<uint64_t> ZkdIndex::SearchObject(
    const geometry::SpatialObject& object, QueryStats* stats,
    const SearchOptions& options) const {
  SearchOptions effective = options;
  if (effective.merge == SearchOptions::Merge::kBigMin) {
    effective.merge = SearchOptions::Merge::kSkipMerge;  // needs a box
  }
  return SearchDecomposed(object, stats, effective);
}

std::vector<uint64_t> ZkdIndex::PartialMatch(
    std::span<const std::optional<uint32_t>> fixed, QueryStats* stats,
    const SearchOptions& options) const {
  assert(fixed.size() == static_cast<size_t>(grid_.dims));
  const uint32_t max_cell = static_cast<uint32_t>(grid_.side() - 1);
  std::vector<zorder::DimRange> ranges(grid_.dims);
  for (int i = 0; i < grid_.dims; ++i) {
    if (fixed[i].has_value()) {
      ranges[i] = {*fixed[i], *fixed[i]};
    } else {
      ranges[i] = {0, max_cell};
    }
  }
  return RangeSearch(GridBox(ranges), stats, options);
}

std::vector<uint64_t> ZkdIndex::SearchDecomposed(
    const geometry::SpatialObject& object, QueryStats* stats,
    const SearchOptions& options) const {
  std::vector<uint64_t> results;
  const int total = grid_.total_bits();
  decompose::DecomposeOptions dopts;
  dopts.max_depth = options.max_element_depth;
  decompose::ElementGenerator generator(grid_, object, dopts);

  // Decide whether candidate verification can ever reject: a full-depth
  // element is exact for any classifier (a one-cell crossing region is
  // decided by the classifier itself for boxes; for general objects the
  // boundary cell counts as inside per the grid approximation), so
  // verification only matters when the decomposition is depth-capped.
  const bool verify =
      options.verify_candidates && options.max_element_depth >= 0 &&
      options.max_element_depth < total;

  auto report = [&](const LeafEntry& entry) {
    if (verify) {
      const GridPoint candidate(std::span<const uint32_t>(
          Unshuffle(grid_, entry.key.ToZValue())));
      if (!object.ContainsCell(candidate)) return;
    }
    results.push_back(entry.payload);
  };

  btree::BTree::Cursor cursor(&tree_);
  ZValue element;
  uint64_t points_scanned = 0;
  uint64_t point_seeks = 0;

  if (options.merge == SearchOptions::Merge::kPlainMerge) {
    // Step 3 of Section 3.3 verbatim: a linear merge of P and B.
    bool have_point = cursor.SeekFirst();
    bool have_element = generator.Next(&element);
    while (have_point && have_element) {
      const uint64_t pz = cursor.entry().key.ToZValue().ToInteger();
      const uint64_t zlo = element.RangeLo(total);
      const uint64_t zhi = element.RangeHi(total);
      ++points_scanned;
      if (pz < zlo) {
        have_point = cursor.Next();
      } else if (pz > zhi) {
        --points_scanned;  // the same point is re-examined next round
        have_element = generator.Next(&element);
      } else {
        report(cursor.entry());
        have_point = cursor.Next();
      }
    }
  } else {
    // The optimized merge: random access on B (SeekForward) and on P
    // (Seek) skips the parts of the space that cannot contribute.
    bool have_element = generator.Next(&element);
    if (have_element) {
      uint64_t zlo = element.RangeLo(total);
      uint64_t zhi = element.RangeHi(total);
      ++point_seeks;
      bool have_point = cursor.Seek(IntegerKey(grid_, zlo));
      while (have_point) {
        const uint64_t pz = cursor.entry().key.ToZValue().ToInteger();
        ++points_scanned;
        if (pz < zlo) {
          // Random access on P: jump to the element's start.
          ++point_seeks;
          have_point = cursor.Seek(IntegerKey(grid_, zlo));
          continue;
        }
        if (pz <= zhi) {
          report(cursor.entry());
          have_point = cursor.Next();
          continue;
        }
        // pz ran past the element: random access on B.
        if (!generator.SeekForward(pz, &element)) break;
        zlo = element.RangeLo(total);
        zhi = element.RangeHi(total);
        if (pz < zlo) {
          ++point_seeks;
          have_point = cursor.Seek(IntegerKey(grid_, zlo));
        }
        // Otherwise the current point lies inside the new element and the
        // next loop iteration reports it.
      }
    }
  }

  if (stats != nullptr) {
    FillCursorStats(cursor, stats);
    stats->points_scanned = points_scanned;
    stats->point_seeks = point_seeks;
    stats->elements_generated = generator.elements_emitted();
    stats->classify_calls = generator.classify_calls();
    stats->results = results.size();
  }
  return results;
}

std::vector<uint64_t> ZkdIndex::SearchBigMin(const GridBox& box,
                                             QueryStats* stats) const {
  assert(box.dims() == grid_.dims);
  std::vector<uint64_t> results;
  std::vector<uint32_t> lo_coords(grid_.dims), hi_coords(grid_.dims);
  for (int i = 0; i < grid_.dims; ++i) {
    lo_coords[i] = box.range(i).lo;
    hi_coords[i] = box.range(i).hi;
  }
  const uint64_t zmin = Shuffle(grid_, lo_coords).ToInteger();
  const uint64_t zmax = Shuffle(grid_, hi_coords).ToInteger();

  btree::BTree::Cursor cursor(&tree_);
  uint64_t points_scanned = 0;
  uint64_t point_seeks = 1;
  bool have_point = cursor.Seek(IntegerKey(grid_, zmin));
  while (have_point) {
    const uint64_t pz = cursor.entry().key.ToZValue().ToInteger();
    if (pz > zmax) break;
    ++points_scanned;
    if (InBox(grid_, pz, zmin, zmax)) {
      results.push_back(cursor.entry().payload);
      have_point = cursor.Next();
      continue;
    }
    uint64_t next_z = 0;
    if (!BigMin(grid_, pz, zmin, zmax, &next_z)) break;
    ++point_seeks;
    have_point = cursor.Seek(IntegerKey(grid_, next_z));
  }

  if (stats != nullptr) {
    FillCursorStats(cursor, stats);
    stats->points_scanned = points_scanned;
    stats->point_seeks = point_seeks;
    stats->results = results.size();
  }
  return results;
}

ZkdIndex::RangeCursor::RangeCursor(const ZkdIndex& index,
                                   const geometry::GridBox& box)
    : index_(index), box_object_(box) {
  generator_ = std::make_unique<decompose::ElementGenerator>(index_.grid_,
                                                             box_object_);
  cursor_ = std::make_unique<btree::BTree::Cursor>(&index_.tree_);
  zorder::ZValue element;
  have_element_ = generator_->Next(&element);
  if (have_element_) {
    const int total = index_.grid_.total_bits();
    zlo_ = element.RangeLo(total);
    zhi_ = element.RangeHi(total);
    ++stats_.point_seeks;
    have_point_ = cursor_->Seek(IntegerKey(index_.grid_, zlo_));
  }
}

ZkdIndex::RangeCursor::~RangeCursor() = default;

bool ZkdIndex::RangeCursor::Next(uint64_t* id, geometry::GridPoint* point) {
  const int total = index_.grid_.total_bits();
  bool found = false;
  while (have_point_ && have_element_) {
    const uint64_t pz = cursor_->entry().key.ToZValue().ToInteger();
    ++stats_.points_scanned;
    if (pz < zlo_) {
      ++stats_.point_seeks;
      have_point_ = cursor_->Seek(IntegerKey(index_.grid_, zlo_));
      continue;
    }
    if (pz <= zhi_) {
      *id = cursor_->entry().payload;
      if (point != nullptr) {
        *point = geometry::GridPoint(std::span<const uint32_t>(
            Unshuffle(index_.grid_, cursor_->entry().key.ToZValue())));
      }
      ++stats_.results;
      have_point_ = cursor_->Next();
      found = true;
      break;
    }
    --stats_.points_scanned;  // this point is re-examined next round
    zorder::ZValue element;
    if (!generator_->SeekForward(pz, &element)) {
      have_element_ = false;
      break;
    }
    zlo_ = element.RangeLo(total);
    zhi_ = element.RangeHi(total);
    if (pz < zlo_) {
      ++stats_.point_seeks;
      have_point_ = cursor_->Seek(IntegerKey(index_.grid_, zlo_));
    }
  }
  stats_.leaf_pages = cursor_->leaf_loads();
  stats_.internal_pages = cursor_->internal_loads();
  stats_.entries_on_touched_pages = cursor_->leaf_entries_seen();
  stats_.elements_generated = generator_->elements_emitted();
  stats_.classify_calls = generator_->classify_calls();
  return found;
}

std::vector<ZkdIndex::LeafInfo> ZkdIndex::LeafPartitions() const {
  std::vector<LeafInfo> infos;
  for (const auto& summary : tree_.LeafSequence()) {
    infos.push_back(LeafInfo{summary.first_key, summary.entries});
  }
  return infos;
}

}  // namespace probe::index
