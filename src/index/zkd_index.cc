#include "index/zkd_index.h"

#include <algorithm>
#include <cassert>
#include <optional>

#include "decompose/generator.h"
#include "obs/runtime_metrics.h"
#include "geometry/primitives.h"
#include "probe/check.h"
#include "storage/audit.h"
#include "zorder/audit.h"
#include "zorder/bigmin.h"
#include "zorder/shuffle.h"

namespace probe::index {

namespace {

using btree::LeafEntry;
using btree::ZKey;
using geometry::GridBox;
using geometry::GridPoint;
using zorder::ZValue;


// Flushes one finished query's aggregates to the process-wide registry —
// a handful of relaxed adds per *query*, so instrumentation cost never
// scales with elements or points (the bench_obs overhead budget depends
// on this). point_seeks is published as the BIGMIN-skip family: every
// seek past the current position is a skip the merge earned.
void FlushQueryMetrics(const QueryStats* stats, size_t result_count) {
  if (stats == nullptr || !obs::Enabled()) return;
  obs::QueryMetrics::Default().RecordQuery(
      stats->leaf_pages, stats->internal_pages, stats->points_scanned,
      stats->elements_generated, stats->point_seeks, result_count);
}

// Full-resolution key of a point.
ZKey PointKey(const zorder::GridSpec& grid, const GridPoint& point) {
  return ZKey::FromZValue(Shuffle(grid, point.coords()));
}

// Full-resolution key whose integer value is `z`.
ZKey IntegerKey(const zorder::GridSpec& grid, uint64_t z) {
  return ZKey::FromZValue(ZValue::FromInteger(z, grid.total_bits()));
}

void FillCursorStats(const btree::BTree::Cursor& cursor, QueryStats* stats) {
  if (stats == nullptr) return;
  stats->leaf_pages = cursor.leaf_loads();
  stats->internal_pages = cursor.internal_loads();
  stats->entries_on_touched_pages = cursor.leaf_entries_seen();
}

void AccumulateStats(QueryStats* into, const QueryStats& part) {
  into->leaf_pages += part.leaf_pages;
  into->internal_pages += part.internal_pages;
  into->points_scanned += part.points_scanned;
  into->elements_generated += part.elements_generated;
  into->classify_calls += part.classify_calls;
  into->point_seeks += part.point_seeks;
  into->results += part.results;
  into->entries_on_touched_pages += part.entries_on_touched_pages;
  into->contained_elements += part.contained_elements;
  into->materialized_rows += part.materialized_rows;
}

// Interior split points for `partitions` contiguous slices of the z span
// [lo, hi], evenly spaced and strictly ascending (duplicates collapse, so
// narrow spans simply yield fewer partitions).
std::vector<uint64_t> EvenSplits(uint64_t lo, uint64_t hi, int partitions) {
  std::vector<uint64_t> splits;
  if (partitions <= 1 || hi <= lo) return splits;
  const unsigned __int128 width =
      static_cast<unsigned __int128>(hi - lo) + 1;
  for (int i = 1; i < partitions; ++i) {
    const uint64_t s =
        lo + static_cast<uint64_t>(width * static_cast<unsigned>(i) /
                                   static_cast<unsigned>(partitions));
    if (s > lo && (splits.empty() || s > splits.back())) splits.push_back(s);
  }
  return splits;
}

}  // namespace

ZkdIndex::ZkdIndex(const zorder::GridSpec& grid, storage::BufferPool* pool,
                   const btree::BTreeConfig& config)
    : grid_(grid), tree_(pool, config) {
  assert(grid_.Valid());
}

ZkdIndex ZkdIndex::Attach(const zorder::GridSpec& grid,
                          storage::BufferPool* pool,
                          const btree::BTree::PersistentState& state,
                          const btree::BTreeConfig& config) {
  assert(grid.Valid());
  return ZkdIndex(grid, btree::BTree::Attach(pool, state, config));
}

ZkdIndex ZkdIndex::Build(const zorder::GridSpec& grid,
                         storage::BufferPool* pool,
                         std::span<const PointRecord> points,
                         const btree::BTreeConfig& config, double fill) {
  std::vector<LeafEntry> entries;
  entries.reserve(points.size());
  for (const PointRecord& record : points) {
    entries.push_back(LeafEntry{PointKey(grid, record.point), record.id});
  }
  std::sort(entries.begin(), entries.end(),
            [](const LeafEntry& a, const LeafEntry& b) {
              if (a.key != b.key) return a.key < b.key;
              return a.payload < b.payload;
            });
  ZkdIndex index(grid, pool, config);
  index.tree_ = btree::BTree::BulkLoad(pool, entries, config, fill);
  return index;
}

ZkdIndex ZkdIndex::BuildExternal(const zorder::GridSpec& grid,
                                 storage::BufferPool* pool,
                                 std::span<const PointRecord> points,
                                 storage::Pager* scratch,
                                 size_t memory_budget,
                                 const btree::BTreeConfig& config, double fill,
                                 btree::ExternalSortStats* sort_stats) {
  btree::ExternalSorter sorter(scratch, memory_budget);
  for (const PointRecord& record : points) {
    sorter.Add(LeafEntry{PointKey(grid, record.point), record.id});
  }
  btree::BTree::BulkBuilder builder(pool, config, fill);
  sorter.Drain([&](const LeafEntry& entry) { builder.Add(entry); });
  if (sort_stats != nullptr) *sort_stats = sorter.stats();
  ZkdIndex index(grid, pool, config);
  index.tree_ = builder.Finish();
  return index;
}

void ZkdIndex::Insert(const GridPoint& point, uint64_t id) {
  tree_.Insert(PointKey(grid_, point), id);
}

bool ZkdIndex::Delete(const GridPoint& point, uint64_t id) {
  return tree_.Delete(PointKey(grid_, point), id);
}

std::vector<uint64_t> ZkdIndex::RangeSearch(const GridBox& box,
                                            QueryStats* stats,
                                            const SearchOptions& options) const {
  // When the caller doesn't want stats but metrics are on, collect into a
  // local so the registry still sees the query.
  QueryStats local;
  QueryStats* s = stats != nullptr ? stats : (obs::Enabled() ? &local : nullptr);
  std::vector<uint64_t> results;
  if (options.merge == SearchOptions::Merge::kBigMin) {
    results = SearchBigMin(box, s);
  } else {
    const geometry::BoxObject object(box);
    results = SearchDecomposed(object, s, options);
  }
  FlushQueryMetrics(s, results.size());
  return results;
}

std::vector<uint64_t> ZkdIndex::SearchObject(
    const geometry::SpatialObject& object, QueryStats* stats,
    const SearchOptions& options) const {
  SearchOptions effective = options;
  if (effective.merge == SearchOptions::Merge::kBigMin) {
    effective.merge = SearchOptions::Merge::kSkipMerge;  // needs a box
  }
  QueryStats local;
  QueryStats* s = stats != nullptr ? stats : (obs::Enabled() ? &local : nullptr);
  std::vector<uint64_t> results = SearchDecomposed(object, s, effective);
  FlushQueryMetrics(s, results.size());
  return results;
}

uint64_t ZkdIndex::CountRange(uint64_t zlo, uint64_t zhi,
                              QueryStats* stats) const {
  storage::PinBalanceScope pin_scope("ZkdIndex::CountRange");
  btree::BTree::Cursor cursor(&tree_);
  uint64_t count = 0;
  if (zlo <= zhi && cursor.Seek(IntegerKey(grid_, zlo))) {
    count = cursor.CountWhileLE(zhi);
  }
  if (stats != nullptr) {
    QueryStats part;
    FillCursorStats(cursor, &part);
    part.point_seeks = 1;
    part.results = count;
    AccumulateStats(stats, part);
  }
  return count;
}

uint64_t ZkdIndex::CountBox(const geometry::GridBox& box, QueryStats* stats,
                            const SearchOptions& options) const {
  const int total = grid_.total_bits();
  const geometry::BoxObject object(box);
  decompose::DecomposeOptions dopts;
  dopts.max_depth = options.max_element_depth;
  decompose::ElementGenerator generator(grid_, object, dopts);

  // At full depth every element region lies inside the box, so whole
  // elements count by interval arithmetic; a depth cap makes boundary
  // elements overcover and forces per-row verification (same criterion
  // as MergePartition).
  const bool verify =
      options.verify_candidates && options.max_element_depth >= 0 &&
      options.max_element_depth < total;

  storage::PinBalanceScope pin_scope("ZkdIndex::CountBox");
  btree::BTree::Cursor cursor(&tree_);
  QueryStats part;
  uint64_t count = 0;
  ZValue element;

  bool have_element = generator.Next(&element);
  if (have_element) {
    uint64_t zlo = element.RangeLo(total);
    uint64_t zhi = element.RangeHi(total);
    ++part.point_seeks;
    bool have_point = cursor.Seek(IntegerKey(grid_, zlo));
    while (have_point) {
      const uint64_t pz = cursor.entry().key.ToZValue().ToInteger();
      if (pz < zlo) {
        ++part.point_seeks;
        have_point = cursor.Seek(IntegerKey(grid_, zlo));
        continue;
      }
      if (pz <= zhi) {
        if (!verify) {
          // Contained element: sum run lengths and whole-leaf header
          // counts; no row is decoded or materialized.
          ++part.contained_elements;
          count += cursor.CountWhileLE(zhi);
          have_point = cursor.Valid();
        } else {
          while (have_point) {
            const uint64_t qz = cursor.entry().key.ToZValue().ToInteger();
            if (qz > zhi) break;
            ++part.points_scanned;
            ++part.materialized_rows;
            const GridPoint candidate(std::span<const uint32_t>(
                Unshuffle(grid_, cursor.entry().key.ToZValue())));
            if (object.ContainsCell(candidate)) ++count;
            have_point = cursor.Next();
          }
        }
        continue;  // the cursor now sits past zhi (or is exhausted)
      }
      // The point ran past the element: random access on B.
      if (!generator.SeekForward(pz, &element)) break;
      zlo = element.RangeLo(total);
      zhi = element.RangeHi(total);
      if (pz < zlo) {
        ++part.point_seeks;
        have_point = cursor.Seek(IntegerKey(grid_, zlo));
      }
    }
  }

  FillCursorStats(cursor, &part);
  part.elements_generated = generator.elements_emitted();
  part.classify_calls = generator.classify_calls();
  part.results = count;
  if (stats != nullptr) AccumulateStats(stats, part);
  FlushQueryMetrics(&part, static_cast<size_t>(count));
  return count;
}

std::vector<uint64_t> ZkdIndex::PartialMatch(
    std::span<const std::optional<uint32_t>> fixed, QueryStats* stats,
    const SearchOptions& options) const {
  assert(fixed.size() == static_cast<size_t>(grid_.dims));
  const uint32_t max_cell = static_cast<uint32_t>(grid_.side() - 1);
  std::vector<zorder::DimRange> ranges(grid_.dims);
  for (int i = 0; i < grid_.dims; ++i) {
    if (fixed[i].has_value()) {
      ranges[i] = {*fixed[i], *fixed[i]};
    } else {
      ranges[i] = {0, max_cell};
    }
  }
  return RangeSearch(GridBox(ranges), stats, options);
}

void ZkdIndex::MergePartition(const geometry::SpatialObject& object,
                              uint64_t owned_lo, uint64_t owned_hi,
                              const SearchOptions& options,
                              std::vector<uint64_t>* results,
                              QueryStats* stats) const {
  const int total = grid_.total_bits();
  decompose::DecomposeOptions dopts;
  dopts.max_depth = options.max_element_depth;
  decompose::ElementGenerator generator(grid_, object, dopts);

  // Decide whether candidate verification can ever reject: a full-depth
  // element is exact for any classifier (a one-cell crossing region is
  // decided by the classifier itself for boxes; for general objects the
  // boundary cell counts as inside per the grid approximation), so
  // verification only matters when the decomposition is depth-capped.
  const bool verify =
      options.verify_candidates && options.max_element_depth >= 0 &&
      options.max_element_depth < total;

  auto report = [&](const LeafEntry& entry) {
    if (verify) {
      const GridPoint candidate(std::span<const uint32_t>(
          Unshuffle(grid_, entry.key.ToZValue())));
      if (!object.ContainsCell(candidate)) return;
    }
    results->push_back(entry.payload);
  };

  // Merge-order invariants (Section 3.3): the element sequence B advances
  // strictly in z order, and reported points never move backwards. Every
  // page pinned by this partition is released before it returns — the
  // scope must outlive the cursor, which keeps its current leaf pinned.
  storage::PinBalanceScope pin_scope("ZkdIndex::MergePartition");

  btree::BTree::Cursor cursor(&tree_);
  ZValue element;
  uint64_t points_scanned = 0;
  uint64_t point_seeks = 0;

  check::ZMonotone element_order(/*strict=*/true);
  check::ZMonotone report_order(/*strict=*/false);

  // The optimized merge of Section 3.3: random access on B (SeekForward)
  // and on P (Seek) skips the parts of the space that cannot contribute.
  // Ownership: this partition merges exactly the elements whose range
  // *starts* in [owned_lo, owned_hi]. Elements are pairwise disjoint in z,
  // so at most one element straddles owned_lo — it belongs to the previous
  // partition and is skipped; a straddler of owned_hi is merged here in
  // full.
  bool have_element = owned_lo == 0
                          ? generator.Next(&element)
                          : generator.SeekForward(owned_lo, &element);
  while (have_element && element.RangeLo(total) < owned_lo) {
    have_element = generator.Next(&element);
  }
  if (have_element && element.RangeLo(total) > owned_hi) have_element = false;
  if (have_element) {
    uint64_t zlo = element.RangeLo(total);
    uint64_t zhi = element.RangeHi(total);
    PROBE_AUDIT(element_order.Observe(zlo, "skip-merge element sequence"));
    ++point_seeks;
    bool have_point = cursor.Seek(IntegerKey(grid_, zlo));
    while (have_point) {
      const uint64_t pz = cursor.entry().key.ToZValue().ToInteger();
      ++points_scanned;
      if (pz < zlo) {
        // Random access on P: jump to the element's start.
        ++point_seeks;
        have_point = cursor.Seek(IntegerKey(grid_, zlo));
        continue;
      }
      if (pz <= zhi) {
        // The point is inside the element: consume the whole run of
        // qualifying entries on this leaf at once. RunLengthLE is the
        // SIMD interval filter over the leaf's decoded z array; the
        // outer loop re-enters here when the element straddles leaves.
        const int run = cursor.RunLengthLE(zhi);
        for (int k = 0; k < run; ++k) {
          PROBE_AUDIT(report_order.Observe(cursor.PeekZ(k),
                                           "skip-merge reported points"));
          report(cursor.PeekEntry(k));
        }
        // The first run entry was already counted at the loop head.
        points_scanned += static_cast<uint64_t>(run) - 1;
        have_point = cursor.Advance(run);
        continue;
      }
      // pz ran past the element: random access on B.
      if (!generator.SeekForward(pz, &element)) break;
      zlo = element.RangeLo(total);
      zhi = element.RangeHi(total);
      PROBE_AUDIT(element_order.Observe(zlo, "skip-merge element sequence"));
      if (zlo > owned_hi) break;  // the next element is another partition's
      if (pz < zlo) {
        ++point_seeks;
        have_point = cursor.Seek(IntegerKey(grid_, zlo));
      }
      // Otherwise the current point lies inside the new element and the
      // next loop iteration reports it.
    }
  }

  QueryStats part;
  FillCursorStats(cursor, &part);
  part.points_scanned = points_scanned;
  part.point_seeks = point_seeks;
  part.elements_generated = generator.elements_emitted();
  part.classify_calls = generator.classify_calls();
  part.results = results->size();
  AccumulateStats(stats, part);
}

std::vector<uint64_t> ZkdIndex::SearchDecomposed(
    const geometry::SpatialObject& object, QueryStats* stats,
    const SearchOptions& options) const {
  std::vector<uint64_t> results;

  if (options.merge != SearchOptions::Merge::kPlainMerge) {
    QueryStats merged;
    MergePartition(object, 0, ~0ULL, options, &results, &merged);
    if (stats != nullptr) *stats = merged;
    return results;
  }

  // Step 3 of Section 3.3 verbatim: a linear merge of P and B.
  const int total = grid_.total_bits();
  decompose::DecomposeOptions dopts;
  dopts.max_depth = options.max_element_depth;
  decompose::ElementGenerator generator(grid_, object, dopts);
  const bool verify =
      options.verify_candidates && options.max_element_depth >= 0 &&
      options.max_element_depth < total;

  auto report = [&](const LeafEntry& entry) {
    if (verify) {
      const GridPoint candidate(std::span<const uint32_t>(
          Unshuffle(grid_, entry.key.ToZValue())));
      if (!object.ContainsCell(candidate)) return;
    }
    results.push_back(entry.payload);
  };

  btree::BTree::Cursor cursor(&tree_);
  ZValue element;
  uint64_t points_scanned = 0;
  bool have_point = cursor.SeekFirst();
  bool have_element = generator.Next(&element);
  while (have_point && have_element) {
    const uint64_t pz = cursor.entry().key.ToZValue().ToInteger();
    const uint64_t zlo = element.RangeLo(total);
    const uint64_t zhi = element.RangeHi(total);
    ++points_scanned;
    if (pz < zlo) {
      have_point = cursor.Next();
    } else if (pz > zhi) {
      --points_scanned;  // the same point is re-examined next round
      have_element = generator.Next(&element);
    } else {
      report(cursor.entry());
      have_point = cursor.Next();
    }
  }

  if (stats != nullptr) {
    FillCursorStats(cursor, stats);
    stats->points_scanned = points_scanned;
    stats->point_seeks = 0;
    stats->elements_generated = generator.elements_emitted();
    stats->classify_calls = generator.classify_calls();
    stats->results = results.size();
  }
  return results;
}

void ZkdIndex::BigMinPartition(uint64_t zmin, uint64_t zmax, uint64_t from,
                               uint64_t upto, std::vector<uint64_t>* results,
                               QueryStats* stats) const {
  // The BIGMIN walk must move strictly forward in z (each skip lands past
  // the current point) and leave no pinned pages behind. The scope must
  // outlive the cursor, which keeps its current leaf pinned.
  storage::PinBalanceScope pin_scope("ZkdIndex::BigMinPartition");
  btree::BTree::Cursor cursor(&tree_);
  uint64_t points_scanned = 0;
  uint64_t point_seeks = 1;
  check::ZMonotone scan_order(/*strict=*/false);
  bool have_point = cursor.Seek(IntegerKey(grid_, from));
  while (have_point) {
    const uint64_t pz = cursor.entry().key.ToZValue().ToInteger();
    if (pz > upto) break;
    PROBE_AUDIT(scan_order.Observe(pz, "BIGMIN point scan"));
    ++points_scanned;
    if (InBox(grid_, pz, zmin, zmax)) {
      results->push_back(cursor.entry().payload);
      have_point = cursor.Next();
      continue;
    }
    uint64_t next_z = 0;
    const bool found = BigMin(grid_, pz, zmin, zmax, &next_z);
    PROBE_AUDIT(zorder::AuditBigMinResult(grid_, pz, zmin, zmax, found,
                                          next_z, /*is_bigmin=*/true));
    if (!found) break;
    if (next_z > upto) break;  // the rest of the box is another partition's
    ++point_seeks;
    have_point = cursor.Seek(IntegerKey(grid_, next_z));
  }

  QueryStats part;
  FillCursorStats(cursor, &part);
  part.points_scanned = points_scanned;
  part.point_seeks = point_seeks;
  part.results = results->size();
  AccumulateStats(stats, part);
}

std::vector<uint64_t> ZkdIndex::SearchBigMin(const GridBox& box,
                                             QueryStats* stats) const {
  assert(box.dims() == grid_.dims);
  std::vector<uint64_t> results;
  std::vector<uint32_t> lo_coords(grid_.dims), hi_coords(grid_.dims);
  for (int i = 0; i < grid_.dims; ++i) {
    lo_coords[i] = box.range(i).lo;
    hi_coords[i] = box.range(i).hi;
  }
  const uint64_t zmin = Shuffle(grid_, lo_coords).ToInteger();
  const uint64_t zmax = Shuffle(grid_, hi_coords).ToInteger();

  QueryStats merged;
  BigMinPartition(zmin, zmax, zmin, zmax, &results, &merged);
  if (stats != nullptr) *stats = merged;
  return results;
}

std::vector<uint64_t> ZkdIndex::ParallelDecomposed(
    const geometry::SpatialObject& object,
    std::span<const uint64_t> split_points, util::ThreadPool& pool,
    QueryStats* stats, const SearchOptions& options) const {
  const size_t parts = split_points.size() + 1;
  std::vector<std::vector<uint64_t>> partial(parts);
  std::vector<QueryStats> partial_stats(parts);
  pool.ParallelFor(parts, [&](size_t k) {
    const uint64_t lo = k == 0 ? 0 : split_points[k - 1];
    const uint64_t hi = k + 1 == parts ? ~0ULL : split_points[k] - 1;
    MergePartition(object, lo, hi, options, &partial[k], &partial_stats[k]);
  });

  size_t total_results = 0;
  for (const auto& p : partial) total_results += p.size();
  std::vector<uint64_t> results;
  results.reserve(total_results);
  for (size_t k = 0; k < parts; ++k) {
    results.insert(results.end(), partial[k].begin(), partial[k].end());
    if (stats != nullptr) AccumulateStats(stats, partial_stats[k]);
  }
  return results;
}

std::vector<uint64_t> ZkdIndex::ParallelRangeSearch(
    const GridBox& box, util::ThreadPool& pool, int partitions,
    QueryStats* stats, const SearchOptions& options) const {
  assert(box.dims() == grid_.dims);
  QueryStats local;
  if (stats == nullptr && obs::Enabled()) stats = &local;
  if (stats != nullptr) *stats = QueryStats{};
  const int parts = partitions > 0 ? partitions : pool.lanes();

  std::vector<uint32_t> lo_coords(grid_.dims), hi_coords(grid_.dims);
  for (int i = 0; i < grid_.dims; ++i) {
    lo_coords[i] = box.range(i).lo;
    hi_coords[i] = box.range(i).hi;
  }
  const uint64_t zmin = Shuffle(grid_, lo_coords).ToInteger();
  const uint64_t zmax = Shuffle(grid_, hi_coords).ToInteger();

  // Candidate split points, snapped *into* the box with BIGMIN: a raw even
  // split may land in a z region the box never visits, which would leave
  // its partition idle. Snapping keeps the points ascending (BIGMIN is
  // monotone); collapsed or exhausted splits just shrink the fan-out.
  std::vector<uint64_t> splits;
  for (const uint64_t raw : EvenSplits(zmin, zmax, parts)) {
    uint64_t snapped = raw;
    if (!InBox(grid_, snapped, zmin, zmax) &&
        !BigMin(grid_, snapped, zmin, zmax, &snapped)) {
      continue;  // no box cell at or after this split
    }
    if (snapped > zmin && (splits.empty() || snapped > splits.back())) {
      splits.push_back(snapped);
    }
  }

  if (options.merge == SearchOptions::Merge::kBigMin) {
    const size_t bparts = splits.size() + 1;
    std::vector<std::vector<uint64_t>> partial(bparts);
    std::vector<QueryStats> partial_stats(bparts);
    pool.ParallelFor(bparts, [&](size_t k) {
      const uint64_t from = k == 0 ? zmin : splits[k - 1];
      const uint64_t upto = k + 1 == bparts ? zmax : splits[k] - 1;
      BigMinPartition(zmin, zmax, from, upto, &partial[k],
                      &partial_stats[k]);
    });
    size_t total_results = 0;
    for (const auto& p : partial) total_results += p.size();
    std::vector<uint64_t> results;
    results.reserve(total_results);
    for (size_t k = 0; k < bparts; ++k) {
      results.insert(results.end(), partial[k].begin(), partial[k].end());
      if (stats != nullptr) AccumulateStats(stats, partial_stats[k]);
    }
    FlushQueryMetrics(stats, results.size());
    return results;
  }

  const geometry::BoxObject object(box);
  std::vector<uint64_t> results =
      ParallelDecomposed(object, splits, pool, stats, options);
  FlushQueryMetrics(stats, results.size());
  return results;
}

std::vector<uint64_t> ZkdIndex::ParallelSearchObject(
    const geometry::SpatialObject& object, util::ThreadPool& pool,
    int partitions, QueryStats* stats, const SearchOptions& options) const {
  QueryStats local;
  if (stats == nullptr && obs::Enabled()) stats = &local;
  if (stats != nullptr) *stats = QueryStats{};
  const int parts = partitions > 0 ? partitions : pool.lanes();
  const int total = grid_.total_bits();
  const uint64_t zmax = total < 64 ? (1ULL << total) - 1 : ~0ULL;
  const std::vector<uint64_t> splits = EvenSplits(0, zmax, parts);
  std::vector<uint64_t> results =
      ParallelDecomposed(object, splits, pool, stats, options);
  FlushQueryMetrics(stats, results.size());
  return results;
}

ZkdIndex::RangeCursor::RangeCursor(const ZkdIndex& index,
                                   const geometry::GridBox& box)
    : index_(index), box_object_(box) {
  generator_ = std::make_unique<decompose::ElementGenerator>(index_.grid_,
                                                             box_object_);
  cursor_ = std::make_unique<btree::BTree::Cursor>(&index_.tree_);
  zorder::ZValue element;
  have_element_ = generator_->Next(&element);
  if (have_element_) {
    const int total = index_.grid_.total_bits();
    zlo_ = element.RangeLo(total);
    zhi_ = element.RangeHi(total);
    ++stats_.point_seeks;
    have_point_ = cursor_->Seek(IntegerKey(index_.grid_, zlo_));
  }
}

ZkdIndex::RangeCursor::~RangeCursor() {
  // A cursor is one query from the registry's point of view: flush its
  // aggregates when it dies, however far the caller drained it.
  FlushQueryMetrics(&stats_, stats_.results);
}

bool ZkdIndex::RangeCursor::Next(uint64_t* id, geometry::GridPoint* point) {
  const int total = index_.grid_.total_bits();
  bool found = false;
  while (have_point_ && have_element_) {
    const uint64_t pz = cursor_->entry().key.ToZValue().ToInteger();
    ++stats_.points_scanned;
    if (pz < zlo_) {
      ++stats_.point_seeks;
      have_point_ = cursor_->Seek(IntegerKey(index_.grid_, zlo_));
      continue;
    }
    if (pz <= zhi_) {
      PROBE_AUDIT(match_order_.Observe(pz, "RangeCursor match stream"));
      *id = cursor_->entry().payload;
      if (point != nullptr) {
        *point = geometry::GridPoint(std::span<const uint32_t>(
            Unshuffle(index_.grid_, cursor_->entry().key.ToZValue())));
      }
      ++stats_.results;
      have_point_ = cursor_->Next();
      found = true;
      break;
    }
    --stats_.points_scanned;  // this point is re-examined next round
    zorder::ZValue element;
    if (!generator_->SeekForward(pz, &element)) {
      have_element_ = false;
      break;
    }
    zlo_ = element.RangeLo(total);
    zhi_ = element.RangeHi(total);
    if (pz < zlo_) {
      ++stats_.point_seeks;
      have_point_ = cursor_->Seek(IntegerKey(index_.grid_, zlo_));
    }
  }
  stats_.leaf_pages = cursor_->leaf_loads();
  stats_.internal_pages = cursor_->internal_loads();
  stats_.entries_on_touched_pages = cursor_->leaf_entries_seen();
  stats_.elements_generated = generator_->elements_emitted();
  stats_.classify_calls = generator_->classify_calls();
  return found;
}

std::vector<ZkdIndex::LeafInfo> ZkdIndex::LeafPartitions() const {
  std::vector<LeafInfo> infos;
  for (const auto& summary : tree_.LeafSequence()) {
    infos.push_back(LeafInfo{summary.first_key, summary.entries});
  }
  return infos;
}

}  // namespace probe::index
