#include "index/durable_index.h"

#include <cstdio>
#include <cstring>

namespace probe::index {

namespace {

// Metadata blob: magic (4) + dims (4) + bits (4) + reserved (4) + tree
// state (16). Grid shape is stored so an attach with the wrong spec fails
// loudly instead of misinterpreting every key.
constexpr uint32_t kMetaMagic = 0x314B5A50u;  // "PZK1"
constexpr size_t kMetaBytes = 16 + btree::BTree::PersistentState::kEncodedBytes;

void PutU32(uint8_t* dst, uint32_t v) { std::memcpy(dst, &v, 4); }
uint32_t GetU32(const uint8_t* src) {
  uint32_t v;
  std::memcpy(&v, src, 4);
  return v;
}

}  // namespace

DurableIndex::DurableIndex(const zorder::GridSpec& grid,
                           const std::string& path, const Options& options)
    : grid_(grid),
      config_(options.config),
      path_(path),
      wal_path_(path + ".wal") {
  if (options.truncate) {
    std::remove(wal_path_.c_str());
    std::remove((wal_path_ + ".tmp").c_str());
  }
  base_ = std::make_unique<storage::FilePager>(path_, options.truncate);
  if (!base_->ok()) return;

  // Recovery happens against the raw file, before any fault injection or
  // logging stacks on top: opening IS recovering.
  recovery_ = storage::Recover(wal_path_, base_.get());

  fault_ = std::make_unique<storage::FaultInjectingPager>(base_.get());
  wal_ = std::make_unique<storage::Wal>(wal_path_);
  if (!wal_->ok()) return;
  txn_ = std::make_unique<storage::TxnPager>(fault_.get(), wal_.get());
  pool_ = std::make_unique<storage::BufferPool>(txn_.get(), options.pool_pages,
                                                options.policy);

  if (!recovery_.meta.empty()) {
    // Reopen: the boundary record's blob says what tree to attach.
    if (recovery_.meta.size() != kMetaBytes ||
        GetU32(recovery_.meta.data()) != kMetaMagic ||
        GetU32(recovery_.meta.data() + 4) != static_cast<uint32_t>(grid_.dims) ||
        GetU32(recovery_.meta.data() + 8) !=
            static_cast<uint32_t>(grid_.bits_per_dim)) {
      return;  // corrupt or mismatched metadata: refuse to attach
    }
    const auto state =
        btree::BTree::PersistentState::Decode(recovery_.meta.data() + 16);
    index_.emplace(ZkdIndex::Attach(grid_, pool_.get(), state, config_));
    ok_ = true;
    return;
  }

  if (base_->page_count() != 0) {
    // Pages but no metadata: not a database this layer wrote.
    return;
  }

  // Fresh database. Commit the empty tree immediately so a crash straight
  // after creation recovers to "empty index", not "no database".
  index_.emplace(grid_, pool_.get(), config_);
  ok_ = true;
  ok_ = CommitBatch();
}

std::vector<uint8_t> DurableIndex::MetaBlob() const {
  std::vector<uint8_t> meta(kMetaBytes, 0);
  PutU32(meta.data(), kMetaMagic);
  PutU32(meta.data() + 4, static_cast<uint32_t>(grid_.dims));
  PutU32(meta.data() + 8, static_cast<uint32_t>(grid_.bits_per_dim));
  index_->DetachState().EncodeTo(meta.data() + 16);
  return meta;
}

bool DurableIndex::CommitBatch() {
  // FlushAll pushes every dirty frame through the TxnPager, which logs the
  // after-images; the commit record then makes them the recoverable state.
  pool_->FlushAll();
  return txn_->Commit(MetaBlob());
}

bool DurableIndex::Apply(std::span<const Op> ops) {
  if (!ok_ || !txn_->ok()) return false;
  for (const Op& op : ops) {
    if (op.kind == Op::Kind::kInsert) {
      index_->Insert(op.point, op.id);
    } else {
      index_->Delete(op.point, op.id);
    }
  }
  return CommitBatch();
}

bool DurableIndex::Checkpoint() {
  if (!ok_ || !txn_->ok()) return false;
  // A checkpoint must sit on a commit boundary; flushing may surface dirty
  // pages (e.g. of a batch the caller never committed), which get a commit
  // of their own first.
  pool_->FlushAll();
  if (txn_->uncommitted_writes() != 0 && !txn_->Commit(MetaBlob())) {
    return false;
  }
  return txn_->Checkpoint(MetaBlob());
}

}  // namespace probe::index
