#include "index/durable_index.h"

#include <cstdio>
#include <cstring>

#include "obs/runtime_metrics.h"
#include "storage/snapshot_pager.h"
#include "util/yieldpoint.h"

namespace probe::index {

namespace {

// Metadata blob: magic (4) + dims (4) + bits (4) + reserved (4) + epoch
// (8) + tree state (16). Grid shape is stored so an attach with the wrong
// spec fails loudly instead of misinterpreting every key; the epoch is
// stored so a reopen resumes the epoch sequence where the durable prefix
// ended.
constexpr uint32_t kMetaMagic = 0x324B5A50u;  // "PZK2"
constexpr size_t kMetaBytes =
    24 + btree::BTree::PersistentState::kEncodedBytes;

void PutU32(uint8_t* dst, uint32_t v) { std::memcpy(dst, &v, 4); }
uint32_t GetU32(const uint8_t* src) {
  uint32_t v;
  std::memcpy(&v, src, 4);
  return v;
}
void PutU64(uint8_t* dst, uint64_t v) { std::memcpy(dst, &v, 8); }
uint64_t GetU64(const uint8_t* src) {
  uint64_t v;
  std::memcpy(&v, src, 8);
  return v;
}

}  // namespace

// Owns one snapshot's whole read stack. Declaration order is teardown
// order reversed: the index detaches before the pool dies, the pool
// (flushing nothing — read-only views have no dirty frames) before the
// pager, and the pin is released last, when nothing references the
// pinned versions anymore.
struct DurableIndex::SnapshotResources {
  DurableIndex* owner = nullptr;
  uint64_t epoch = 0;
  std::unique_ptr<storage::SnapshotPager> pager;
  std::unique_ptr<storage::BufferPool> pool;
  std::optional<ZkdIndex> index;

  ~SnapshotResources() {
    index.reset();
    pool.reset();
    pager.reset();
    if (owner != nullptr) owner->ReleasePin(epoch);
  }
};

uint64_t DurableIndex::Snapshot::epoch() const { return res_->epoch; }
ZkdIndex& DurableIndex::Snapshot::index() const { return *res_->index; }

DurableIndex::DurableIndex(const zorder::GridSpec& grid,
                           const std::string& path, const Options& options)
    : grid_(grid),
      config_(options.config),
      path_(path),
      wal_path_(path + ".wal"),
      snapshot_pool_pages_(options.snapshot_pool_pages) {
  if (options.truncate) {
    std::remove(wal_path_.c_str());
    std::remove((wal_path_ + ".tmp").c_str());
  }
  base_ = std::make_unique<storage::FilePager>(path_, options.truncate);
  if (!base_->ok()) return;

  // Recovery happens against the raw file, before any fault injection or
  // logging stacks on top: opening IS recovering.
  recovery_ = storage::Recover(wal_path_, base_.get());

  fault_ = std::make_unique<storage::FaultInjectingPager>(base_.get());
  wal_ = std::make_unique<storage::Wal>(wal_path_);
  if (!wal_->ok()) return;
  txn_ = std::make_unique<storage::TxnPager>(fault_.get(), wal_.get());
  pool_ = std::make_unique<storage::BufferPool>(txn_.get(), options.pool_pages,
                                                options.policy);

  if (!recovery_.meta.empty()) {
    // Reopen: the boundary record's blob says what tree to attach.
    if (recovery_.meta.size() != kMetaBytes ||
        GetU32(recovery_.meta.data()) != kMetaMagic ||
        GetU32(recovery_.meta.data() + 4) != static_cast<uint32_t>(grid_.dims) ||
        GetU32(recovery_.meta.data() + 8) !=
            static_cast<uint32_t>(grid_.bits_per_dim)) {
      return;  // corrupt or mismatched metadata: refuse to attach
    }
    const uint64_t epoch = GetU64(recovery_.meta.data() + 16);
    const auto state =
        btree::BTree::PersistentState::Decode(recovery_.meta.data() + 24);
    index_.emplace(ZkdIndex::Attach(grid_, pool_.get(), state, config_));
    // Resume the epoch sequence at the recovered commit, which is by
    // construction durable and hence immediately publishable.
    txn_->RestoreEpoch(epoch);
    {
      util::MutexLock lock(&epoch_mutex_);
      states_[epoch] = EpochState{state, txn_->page_count()};
      published_epoch_ = epoch;
    }
    ok_ = true;
    return;
  }

  if (base_->page_count() != 0) {
    // Pages but no metadata: not a database this layer wrote.
    return;
  }

  // Fresh database. Commit the empty tree immediately (as epoch 1) so a
  // crash straight after creation recovers to "empty index", not "no
  // database".
  index_.emplace(grid_, pool_.get(), config_);
  ok_ = true;
  ok_ = Apply({});
}

std::vector<uint8_t> DurableIndex::MetaBlob(uint64_t epoch) const {
  std::vector<uint8_t> meta(kMetaBytes, 0);
  PutU32(meta.data(), kMetaMagic);
  PutU32(meta.data() + 4, static_cast<uint32_t>(grid_.dims));
  PutU32(meta.data() + 8, static_cast<uint32_t>(grid_.bits_per_dim));
  PutU64(meta.data() + 16, epoch);
  index_->DetachState().EncodeTo(meta.data() + 24);
  return meta;
}

void DurableIndex::RegisterEpoch(uint64_t epoch) {
  util::MutexLock lock(&epoch_mutex_);
  states_[epoch] = EpochState{index_->DetachState(), txn_->page_count()};
}

void DurableIndex::Publish(uint64_t epoch) {
  {
    util::MutexLock lock(&epoch_mutex_);
    // Group commits complete out of order across threads, but an LSN
    // being durable makes every earlier commit durable too, so raising
    // to the max is exactly "publish everything now durable".
    if (epoch > published_epoch_) published_epoch_ = epoch;
    PruneEpochsLocked();
  }
  util::SchedulePoint("epoch.publish");
}

bool DurableIndex::Apply(std::span<const Op> ops, uint64_t* epoch_out) {
  if (!ok_) return false;
  uint64_t lsn = 0;
  uint64_t epoch = 0;
  {
    util::MutexLock lock(&apply_mutex_);
    if (!txn_->ok()) return false;
    for (const Op& op : ops) {
      if (op.kind == Op::Kind::kInsert) {
        index_->Insert(op.point, op.id);
      } else {
        index_->Delete(op.point, op.id);
      }
    }
    // FlushAll pushes every dirty frame through the TxnPager, which logs
    // the after-images; the commit record then covers them all as one
    // epoch.
    pool_->FlushAll();
    epoch = txn_->next_epoch();
    lsn = txn_->CommitDeferred(MetaBlob(epoch));
    if (lsn == 0) return false;
    RegisterEpoch(epoch);
    util::SchedulePoint("epoch.prepublish");
  }
  // The slow part — waiting for the fsync — happens outside the apply
  // lock, so concurrent batches pile into one group commit.
  if (!wal_->GroupCommit(lsn)) return false;
  Publish(epoch);
  if (epoch_out != nullptr) *epoch_out = epoch;
  return true;
}

DurableIndex::Snapshot DurableIndex::CreateSnapshot() {
  std::shared_ptr<SnapshotResources> res;
  // Holds a stale cached view so it outlives the lock scope below: if a
  // concurrent reader dropped the last Snapshot after our cached_.lock(),
  // this reference is the final one, and ~SnapshotResources re-enters
  // epoch_mutex_ via ReleasePin — destroying it while still holding the
  // lock would self-deadlock.
  std::shared_ptr<SnapshotResources> stale;
  {
    util::MutexLock lock(&epoch_mutex_);
    // A draining checkpoint is about to drop the page versions pins
    // resolve through; new pins wait for the cut-over.
    while (draining_) epoch_cv_.Wait(&epoch_mutex_);
    const uint64_t epoch = published_epoch_;
    stale = cached_.lock();
    if (stale && stale->epoch == epoch) {
      return Snapshot(std::move(stale));  // share the live view's pin
    }
    const auto it = states_.find(epoch);
    if (it == states_.end()) return Snapshot();  // engine never opened
    res = std::make_shared<SnapshotResources>();
    res->owner = this;
    res->epoch = epoch;
    res->pager = std::make_unique<storage::SnapshotPager>(
        txn_.get(), epoch, it->second.page_count);
    res->pool = std::make_unique<storage::BufferPool>(
        res->pager.get(), snapshot_pool_pages_);
    res->index.emplace(
        ZkdIndex::Attach(grid_, res->pool.get(), it->second.state, config_));
    ++pins_[epoch];
    ++pin_count_;
    if (obs::Enabled()) {
      obs::StorageMetrics::Default().snapshot_pins->Set(pin_count_);
    }
    cached_ = res;
  }
  util::SchedulePoint("snapshot.pin");
  return Snapshot(std::move(res));
}

uint64_t DurableIndex::published_epoch() const {
  util::MutexLock lock(&epoch_mutex_);
  return published_epoch_;
}

uint64_t DurableIndex::published_size() const {
  util::MutexLock lock(&epoch_mutex_);
  const auto it = states_.find(published_epoch_);
  return it == states_.end() ? 0 : it->second.state.size;
}

void DurableIndex::PruneEpochsLocked() {
  // A future snapshot only ever pins the published epoch, so any older,
  // unpinned state (including ones skipped over between two pins) is
  // unreachable for good. States above the published epoch are commits
  // still waiting on their group commit — never touched here.
  for (auto it = states_.begin(); it != states_.end();) {
    if (it->first < published_epoch_ && pins_.find(it->first) == pins_.end()) {
      it = states_.erase(it);
    } else {
      ++it;
    }
  }
}

uint64_t DurableIndex::TrimFloorLocked() const {
  if (pins_.empty()) return published_epoch_;
  return std::min(pins_.begin()->first, published_epoch_);
}

void DurableIndex::ReleasePin(uint64_t epoch) {
  uint64_t trim = 0;
  uint64_t lag = 0;
  int pins_now = 0;
  {
    util::MutexLock lock(&epoch_mutex_);
    const auto it = pins_.find(epoch);
    if (it != pins_.end() && --(it->second) == 0) pins_.erase(it);
    --pin_count_;
    pins_now = pin_count_;
    lag = published_epoch_ - epoch;
    PruneEpochsLocked();
    trim = TrimFloorLocked();
    epoch_cv_.NotifyAll();  // a draining checkpoint may be waiting
  }
  // Version GC outside the epoch lock: a concurrently raised floor just
  // means this trim is conservative.
  txn_->TrimVersions(trim);
  if (obs::Enabled()) {
    obs::StorageMetrics& m = obs::StorageMetrics::Default();
    m.snapshot_pins->Set(pins_now);
    m.snapshot_epoch_lag->Observe(static_cast<double>(lag));
  }
}

bool DurableIndex::Checkpoint() {
  if (!ok_) return false;
  util::MutexLock lock(&apply_mutex_);
  if (!txn_->ok()) return false;
  // A checkpoint must sit on a commit boundary; flushing may surface dirty
  // pages (e.g. of a batch the caller never committed), which get a commit
  // of their own first.
  pool_->FlushAll();
  if (txn_->uncommitted_writes() != 0) {
    const uint64_t epoch = txn_->next_epoch();
    const uint64_t lsn = txn_->CommitDeferred(MetaBlob(epoch));
    if (lsn == 0) return false;
    RegisterEpoch(epoch);
    if (!wal_->GroupCommit(lsn)) return false;
    Publish(epoch);
  }
  // The cut-over clears every parked page version, so every snapshot pin
  // must be gone first. New snapshots queue behind draining_; Apply is
  // excluded by apply_mutex_. A snapshot held across this call deadlocks
  // by contract — release pins before checkpointing.
  {
    util::MutexLock epochs(&epoch_mutex_);
    draining_ = true;
    while (pin_count_ != 0) epoch_cv_.Wait(&epoch_mutex_);
  }
  const bool committed = txn_->Checkpoint(MetaBlob(txn_->committed_epoch()));
  {
    util::MutexLock epochs(&epoch_mutex_);
    draining_ = false;
    PruneEpochsLocked();
    epoch_cv_.NotifyAll();  // wake snapshot creators queued on the drain
  }
  return committed;
}

}  // namespace probe::index
