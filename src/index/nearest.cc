#include "index/nearest.h"

#include <algorithm>
#include <cassert>
#include <queue>

#include "btree/zkey.h"
#include "geometry/primitives.h"
#include "zorder/shuffle.h"

namespace probe::index {

namespace {

using btree::ZKey;
using zorder::ZValue;

// Squared distance from the query cell to the closest cell of the region.
// Accumulated in Dist2: two 32-bit deltas squared can sum past 2^64.
Dist2 MinDistance2(const std::vector<zorder::DimRange>& region,
                   const geometry::GridPoint& query) {
  Dist2 dist2 = 0;
  for (size_t d = 0; d < region.size(); ++d) {
    const uint32_t q = query[static_cast<int>(d)];
    uint64_t delta = 0;
    if (q < region[d].lo) {
      delta = region[d].lo - q;
    } else if (q > region[d].hi) {
      delta = q - region[d].hi;
    }
    dist2 += static_cast<Dist2>(delta) * delta;
  }
  return dist2;
}

Dist2 PointDistance2(const geometry::GridPoint& a,
                     const geometry::GridPoint& b) {
  Dist2 dist2 = 0;
  for (int d = 0; d < a.dims(); ++d) {
    const uint64_t delta = a[d] > b[d] ? a[d] - b[d] : b[d] - a[d];
    dist2 += static_cast<Dist2>(delta) * delta;
  }
  return dist2;
}

// Priority-queue entry: a z-prefix region with its optimistic distance.
struct Candidate {
  Dist2 dist2;
  ZValue region;
  // Larger dist2 = lower priority; ties broken by z order for determinism.
  bool operator<(const Candidate& other) const {
    if (dist2 != other.dist2) return dist2 > other.dist2;
    return other.region < region;
  }
};

}  // namespace

std::vector<Neighbor> KNearest(const ZkdIndex& index,
                               const geometry::GridPoint& query, size_t k,
                               NearestStats* stats,
                               const NearestOptions& options) {
  const zorder::GridSpec& grid = index.grid();
  assert(query.dims() == grid.dims);
  const int total = grid.total_bits();
  std::vector<Neighbor> best;  // kept sorted by (distance2, id), size <= k
  if (k == 0) return best;

  auto worst_bound = [&]() -> Dist2 {
    if (best.size() < k) return ~static_cast<Dist2>(0);
    return best.back().distance2;
  };
  auto offer = [&](uint64_t id, Dist2 dist2) {
    if (best.size() == k && dist2 > best.back().distance2) return;
    const Neighbor candidate{id, dist2};
    auto pos = std::lower_bound(best.begin(), best.end(), candidate,
                                [](const Neighbor& a, const Neighbor& b) {
                                  if (a.distance2 != b.distance2) {
                                    return a.distance2 < b.distance2;
                                  }
                                  return a.id < b.id;
                                });
    best.insert(pos, candidate);
    if (best.size() > k) best.pop_back();
  };

  btree::BTree::Cursor cursor(&index.tree());
  uint64_t regions_expanded = 0;
  uint64_t range_scans = 0;
  uint64_t points_examined = 0;

  std::priority_queue<Candidate> frontier;
  frontier.push(Candidate{0, ZValue()});
  while (!frontier.empty()) {
    const Candidate candidate = frontier.top();
    frontier.pop();
    // Everything left is at least this far away; if the k-th best beats
    // it, the search is complete.
    if (candidate.dist2 > worst_bound()) break;
    ++regions_expanded;

    // On a full 64-bit grid the root region has 2^64 cells; guard the
    // shift (1 << 64 is undefined) by treating >= 2^63 as "never scan".
    const int free_bits = total - candidate.region.length();
    if (free_bits < 64 &&
        (1ULL << free_bits) <= options.scan_cell_threshold) {
      // Scan the region's consecutive z range.
      ++range_scans;
      const uint64_t zlo = candidate.region.RangeLo(total);
      const uint64_t zhi = candidate.region.RangeHi(total);
      bool have = cursor.Seek(
          ZKey::FromZValue(ZValue::FromInteger(zlo, total)));
      while (have) {
        const ZValue z = cursor.entry().key.ToZValue();
        if (z.ToInteger() > zhi) break;
        ++points_examined;
        const geometry::GridPoint point(
            std::span<const uint32_t>(Unshuffle(grid, z)));
        offer(cursor.entry().payload, PointDistance2(point, query));
        have = cursor.Next();
      }
      continue;
    }
    for (int bit = 0; bit <= 1; ++bit) {
      const ZValue child = candidate.region.Child(bit);
      const Dist2 dist2 = MinDistance2(UnshuffleRegion(grid, child), query);
      if (dist2 <= worst_bound()) frontier.push(Candidate{dist2, child});
    }
  }

  if (stats != nullptr) {
    stats->regions_expanded = regions_expanded;
    stats->range_scans = range_scans;
    stats->points_examined = points_examined;
    stats->leaf_pages = cursor.leaf_loads();
    stats->internal_pages = cursor.internal_loads();
  }
  return best;
}

std::vector<uint64_t> WithinDistance(const ZkdIndex& index,
                                     const geometry::GridPoint& query,
                                     double radius, QueryStats* stats) {
  std::vector<double> center(query.dims());
  for (int d = 0; d < query.dims(); ++d) {
    center[d] = static_cast<double>(query[d]) + 0.5;
  }
  // BallObject membership uses cell centers, which are offset by +0.5 from
  // the integer coordinates distances are measured on; centering the ball
  // on the query's cell center makes the two agree exactly.
  const geometry::BallObject ball(std::move(center), radius);
  return index.SearchObject(ball, stats);
}

}  // namespace probe::index
