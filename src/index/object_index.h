#ifndef PROBE_INDEX_OBJECT_INDEX_H_
#define PROBE_INDEX_OBJECT_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "btree/btree.h"
#include "decompose/decomposer.h"
#include "geometry/box.h"
#include "geometry/object.h"
#include "zorder/grid.h"

/// \file
/// An index of *spatial objects* (not points): the persistent half of the
/// paper's spatial join.
///
/// Section 4's scenario stores decomposed objects in relations; when one
/// side of `R[zr <> zs]S` is a stored relation, its element sequence
/// should come from an index rather than a scan. ZkdObjectIndex keeps the
/// elements of many objects in one prefix B+-tree (key = element z value,
/// payload = object id). An overlap query decomposes the probe object
/// lazily and merges it against the tree with the same two-sided skipping
/// as point range search — plus one twist: elements in the tree that
/// *contain* the probe region precede it in z order, so the merge also
/// checks the O(total bits) prefixes of each probe element with point
/// lookups (the "parents" a nesting stack would have seen).

namespace probe::index {

/// Work counters for one object-index query.
struct ObjectQueryStats {
  uint64_t leaf_pages = 0;
  uint64_t internal_pages = 0;
  uint64_t entries_scanned = 0;
  uint64_t probe_elements = 0;
  uint64_t prefix_lookups = 0;
  uint64_t result_objects = 0;
};

/// Index mapping element z values to object ids.
class ZkdObjectIndex {
 public:
  /// The pool must outlive the index.
  ZkdObjectIndex(const zorder::GridSpec& grid, storage::BufferPool* pool,
                 const btree::BTreeConfig& config = {});

  /// Decomposes `object` and stores its elements under `id`. Returns the
  /// number of elements inserted. The same id may be inserted once only
  /// (delete first to re-insert a moved object).
  uint64_t Insert(uint64_t id, const geometry::SpatialObject& object,
                  const decompose::DecomposeOptions& options = {});

  /// Removes the elements previously inserted for `id`. The object's
  /// geometry must be re-supplied (the index stores only elements).
  /// Returns the number of elements removed.
  uint64_t Remove(uint64_t id, const geometry::SpatialObject& object,
                  const decompose::DecomposeOptions& options = {});

  /// Ids of all stored objects whose decomposition overlaps `probe`
  /// (deduplicated, ascending). `options` control the probe object's
  /// decomposition only.
  std::vector<uint64_t> QueryOverlapping(
      const geometry::SpatialObject& probe, ObjectQueryStats* stats = nullptr,
      const decompose::DecomposeOptions& options = {}) const;

  /// Convenience: objects overlapping a box (window query).
  std::vector<uint64_t> QueryBox(const geometry::GridBox& box,
                                 ObjectQueryStats* stats = nullptr) const;

  /// Ids of objects whose decomposition covers the single cell at `point`
  /// (a stabbing query): exactly the elements whose z value is a prefix of
  /// the point's.
  std::vector<uint64_t> QueryPoint(const geometry::GridPoint& point,
                                   ObjectQueryStats* stats = nullptr) const;

  /// Ids of stored objects *entirely contained* in `window` — Section 6's
  /// containment query ("containment implies overlap but not vice
  /// versa"). An object qualifies iff every one of its stored elements
  /// lies inside the window, checked during the overlap merge against the
  /// per-object element counts kept at insert time.
  std::vector<uint64_t> QueryContained(const geometry::GridBox& window,
                                       ObjectQueryStats* stats = nullptr) const;

  /// Total elements stored.
  uint64_t element_count() const { return tree_.size(); }

  const zorder::GridSpec& grid() const { return grid_; }

 private:
  zorder::GridSpec grid_;
  mutable btree::BTree tree_;
  // Elements stored per object id (maintained by Insert/Remove); needed by
  // the containment query to recognize fully covered objects.
  std::unordered_map<uint64_t, uint64_t> element_counts_;
};

}  // namespace probe::index

#endif  // PROBE_INDEX_OBJECT_INDEX_H_
