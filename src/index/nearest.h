#ifndef PROBE_INDEX_NEAREST_H_
#define PROBE_INDEX_NEAREST_H_

#include <cstdint>
#include <vector>

#include "geometry/point.h"
#include "index/zkd_index.h"

/// \file
/// Proximity queries on the zkd index (Section 6).
///
/// "Proximity queries can often be translated into containment or overlap
/// queries." Two translations are provided:
///
///  * WithinDistance — the direct one: points within distance r of q are
///    the points inside a ball object, answered by the ordinary
///    decompose-and-merge search.
///  * KNearest — when r is not known in advance: a best-first search over
///    z-prefix regions. Regions (elements-to-be) are expanded in order of
///    their minimum distance to the query point; when a region is small
///    enough, its points are fetched from the B+-tree by one z-range scan
///    (a region is a run of consecutive z values, so the fetch is
///    sequential). The search stops when the nearest unexplored region is
///    farther than the current k-th best point.

namespace probe::index {

/// Squared-distance accumulator. A single-axis delta on a full-resolution
/// 32-bit grid can reach 2^32 - 1, so its square approaches 2^64 and a
/// 2-d squared distance approaches 2^65 — past uint64_t. All distance
/// arithmetic runs in 128 bits so ordering stays correct at the corners
/// of the deepest grid.
using Dist2 = unsigned __int128;

/// One k-NN result.
struct Neighbor {
  uint64_t id = 0;
  /// Squared Euclidean distance between cell coordinates.
  Dist2 distance2 = 0;
};

/// Work counters for one k-NN search.
struct NearestStats {
  uint64_t regions_expanded = 0;
  uint64_t range_scans = 0;
  uint64_t points_examined = 0;
  uint64_t leaf_pages = 0;
  uint64_t internal_pages = 0;
};

/// Options for KNearest.
struct NearestOptions {
  /// A region is scanned (rather than split) once it has at most this
  /// many cells. Smaller values mean more, tighter scans.
  uint64_t scan_cell_threshold = 1024;
};

/// The k nearest stored points to `query` (ties broken by id), closest
/// first. Returns fewer than k if the index holds fewer points.
std::vector<Neighbor> KNearest(const ZkdIndex& index,
                               const geometry::GridPoint& query, size_t k,
                               NearestStats* stats = nullptr,
                               const NearestOptions& options = {});

/// Ids of points within Euclidean distance `radius` of `query` (inclusive),
/// via the ball-overlap translation.
std::vector<uint64_t> WithinDistance(const ZkdIndex& index,
                                     const geometry::GridPoint& query,
                                     double radius,
                                     QueryStats* stats = nullptr);

}  // namespace probe::index

#endif  // PROBE_INDEX_NEAREST_H_
