#ifndef PROBE_INDEX_COST_MODEL_H_
#define PROBE_INDEX_COST_MODEL_H_

#include <cstdint>
#include <vector>

#include "geometry/box.h"
#include "index/zkd_index.h"

/// \file
/// Optimizer support: predicting a query's page accesses without running
/// it.
///
/// The paper's integration argument is that spatial search should live
/// inside the DBMS — and a DBMS query optimizer needs cost estimates
/// before choosing a plan. Because a leaf page owns a contiguous z-value
/// interval, the pages a range query touches are computable from the leaf
/// boundary keys alone: decompose the box (CPU only), coalesce the
/// elements into z runs, and count the leaves whose interval meets a run.
/// Boundary keys alone cannot see two execution details — the merge lands
/// on a successor leaf when a seek falls in a key gap (undercount), and an
/// intersecting leaf may be skipped when its relevant cells hold no points
/// (overcount) — so the estimate drifts a few pages either way: within
/// ~10% of the executed page count in the experiment workloads, ample for
/// plan choice. A decomposition depth cap makes estimation cheaper and
/// biases it upward instead (a coarser cover touches more leaves).

namespace probe::index {

/// A snapshot of an index's leaf partitioning, usable for estimation.
class CostModel {
 public:
  /// Captures the current leaf boundaries of `index` (one key per leaf;
  /// O(leaf count) work, read once).
  static CostModel FromIndex(const ZkdIndex& index);

  /// An estimate for one query.
  struct Estimate {
    /// Predicted data pages touched.
    uint64_t pages = 0;
    /// Elements the estimator generated.
    uint64_t elements_used = 0;
    /// True when produced at full decomposition depth (the query's cell
    /// set was represented exactly).
    bool full_depth = false;
  };

  /// Estimates pages for a range query. `max_element_depth` < 0 means full
  /// depth; smaller caps trade accuracy for estimation speed.
  Estimate EstimatePages(const geometry::GridBox& box,
                         int max_element_depth = -1) const;

  size_t leaf_count() const { return first_keys_.size(); }

 private:
  zorder::GridSpec grid_;
  std::vector<uint64_t> first_keys_;  // RangeLo of each leaf's first key
};

}  // namespace probe::index

#endif  // PROBE_INDEX_COST_MODEL_H_
