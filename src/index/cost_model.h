#ifndef PROBE_INDEX_COST_MODEL_H_
#define PROBE_INDEX_COST_MODEL_H_

#include <cstdint>
#include <vector>

#include "geometry/box.h"
#include "index/zkd_index.h"

/// \file
/// Optimizer support: predicting a query's page accesses without running
/// it.
///
/// The paper's integration argument is that spatial search should live
/// inside the DBMS — and a DBMS query optimizer needs cost estimates
/// before choosing a plan. Because a leaf page owns a contiguous z-value
/// interval, the pages a range query touches are computable from the leaf
/// boundary keys alone: decompose the box (CPU only), coalesce the
/// elements into z runs, and count the leaves whose interval meets a run.
/// Boundary keys alone cannot see two execution details — the merge lands
/// on a successor leaf when a seek falls in a key gap (undercount), and an
/// intersecting leaf may be skipped when its relevant cells hold no points
/// (overcount) — so the estimate drifts a few pages either way: within
/// ~10% of the executed page count in the experiment workloads, ample for
/// plan choice. A decomposition depth cap makes estimation cheaper and
/// biases it upward instead (a coarser cover touches more leaves).

namespace probe::index {

/// A snapshot of an index's leaf partitioning, usable for estimation.
class CostModel {
 public:
  /// Captures the current leaf boundaries of `index` (one key per leaf;
  /// O(leaf count) work, read once).
  static CostModel FromIndex(const ZkdIndex& index);

  /// An estimate for one query.
  struct Estimate {
    /// Predicted data pages touched.
    uint64_t pages = 0;
    /// Elements the estimator generated.
    uint64_t elements_used = 0;
    /// True when produced at full decomposition depth (the query's cell
    /// set was represented exactly).
    bool full_depth = false;
  };

  /// Estimates pages for a range query. `max_element_depth` < 0 means full
  /// depth; smaller caps trade accuracy for estimation speed.
  Estimate EstimatePages(const geometry::GridBox& box,
                         int max_element_depth = -1) const;

  /// An estimate for a spatial join restricted to two box extents.
  struct JoinEstimate {
    /// True when the boxes share at least one cell (pairs are possible).
    bool overlap = false;
    /// Predicted data pages touched on this model's index.
    uint64_t r_pages = 0;
    /// Predicted data pages touched on `s_model`'s index.
    uint64_t s_pages = 0;
    /// Elements the estimator generated (both boxes).
    uint64_t elements_used = 0;

    uint64_t pages() const { return r_pages + s_pages; }
  };

  /// Estimates the pages a spatial join between this model's index
  /// (restricted to `r_box`) and `s_model`'s index (restricted to `s_box`)
  /// must touch. Pairs can only arise where the two boxes overlap, so both
  /// boxes are decomposed into z runs, the run lists are intersected, and
  /// each snapshot's leaves are counted against the shared runs — the
  /// join's useful I/O. Disjoint boxes estimate zero pages (the planner
  /// short-circuits to an empty result). Both models must be over the same
  /// grid. `max_element_depth` as in EstimatePages.
  JoinEstimate EstimateJoinPages(const CostModel& s_model,
                                 const geometry::GridBox& r_box,
                                 const geometry::GridBox& s_box,
                                 int max_element_depth = -1) const;

  /// An estimate for a zones-style distance join.
  struct DistanceJoinEstimate {
    /// Predicted scratch pages of the two zone sorts (written + read; 0
    /// when both sides fit the sort budget in memory).
    uint64_t pages = 0;
    /// Zones the grid is cut into at the chosen height.
    uint64_t zones = 0;
    /// Predicted candidate pairs (distance tests) under a
    /// uniform-density assumption: each R point sees the S points in a
    /// (2r+1) x (2r+h) window.
    uint64_t candidate_pairs = 0;
  };

  /// Prices DistanceJoin(R, S, radius) on `grid` analytically — no index
  /// needed, the join runs on raw point sets. `zone_height` 0 means the
  /// join's max(1, radius) default; `sort_budget_entries` is the join's
  /// in-memory sort buffer (decides whether the sorts spill).
  static DistanceJoinEstimate EstimateDistanceJoinPages(
      const zorder::GridSpec& grid, uint64_t r_rows, uint64_t s_rows,
      uint64_t radius, uint64_t zone_height = 0,
      uint64_t sort_budget_entries = 1u << 20);

  /// Picks a decomposition depth cap for `box` from the Section 5.1
  /// element-count analysis: the finest depth whose worst-case element
  /// count (decompose::CappedElementUpperBound) stays within
  /// `element_budget`. Returns -1 when full depth already fits — the
  /// common case for small queries — so the result can be passed straight
  /// to SearchOptions::max_element_depth / EstimatePages.
  static int EstimateDepthCap(const zorder::GridSpec& grid,
                              const geometry::GridBox& box,
                              uint64_t element_budget);

  size_t leaf_count() const { return first_keys_.size(); }

  /// Mean entries per leaf at snapshot time. Leaf density depends on the
  /// page format — compressed (v2) leaves pack several times more keys per
  /// page than fixed-width v1 leaves — and the snapshot measures it instead
  /// of assuming a compile-time capacity, so estimates convert between rows
  /// and pages correctly for either format (or a mixed tree).
  double avg_leaf_entries() const { return avg_leaf_entries_; }

  const zorder::GridSpec& grid() const { return grid_; }

 private:
  /// A maximal run of consecutive full-resolution z values covered by the
  /// query's elements.
  struct Run {
    uint64_t lo;
    uint64_t hi;
  };

  /// Decomposes `box` (CPU only) and coalesces the elements into maximal
  /// z runs, counting the elements into `elements_used`.
  std::vector<Run> RunsForBox(const geometry::GridBox& box,
                              int max_element_depth,
                              uint64_t* elements_used) const;

  /// Leaves whose key interval meets at least one run (the two-pointer
  /// sweep EstimatePages has always used; runs must be sorted/disjoint).
  uint64_t CountLeafPages(const std::vector<Run>& runs) const;

  zorder::GridSpec grid_;
  std::vector<uint64_t> first_keys_;  // RangeLo of each leaf's first key
  double avg_leaf_entries_ = 0.0;
};

}  // namespace probe::index

#endif  // PROBE_INDEX_COST_MODEL_H_
