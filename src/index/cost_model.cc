#include "index/cost_model.h"

#include <algorithm>
#include <cassert>

#include "decompose/decomposer.h"

namespace probe::index {

CostModel CostModel::FromIndex(const ZkdIndex& index) {
  CostModel model;
  model.grid_ = index.grid();
  const int total = model.grid_.total_bits();
  for (const auto& leaf : index.LeafPartitions()) {
    model.first_keys_.push_back(leaf.first_key.ToZValue().RangeLo(total));
  }
  return model;
}

CostModel::Estimate CostModel::EstimatePages(const geometry::GridBox& box,
                                             int max_element_depth) const {
  Estimate estimate;
  estimate.full_depth =
      max_element_depth < 0 || max_element_depth >= grid_.total_bits();
  if (first_keys_.empty()) return estimate;

  // Decompose (CPU only) and coalesce elements into maximal z runs.
  decompose::DecomposeOptions options;
  options.max_depth = max_element_depth;
  const auto elements = decompose::DecomposeBox(grid_, box, options);
  estimate.elements_used = elements.size();
  const int total = grid_.total_bits();
  struct Run {
    uint64_t lo;
    uint64_t hi;
  };
  std::vector<Run> runs;
  for (const auto& e : elements) {
    const uint64_t lo = e.RangeLo(total);
    const uint64_t hi = e.RangeHi(total);
    if (!runs.empty() && runs.back().hi + 1 == lo) {
      runs.back().hi = hi;
    } else {
      runs.push_back(Run{lo, hi});
    }
  }

  // Leaf i owns the key interval [start_i, start_{i+1}) where start_0 is
  // pulled down to 0 (a seek below the first key lands on leaf 0) and the
  // last interval is open-ended. Two-pointer sweep over sorted runs.
  const size_t n = first_keys_.size();
  auto start_of = [&](size_t i) -> uint64_t {
    return i == 0 ? 0 : first_keys_[i];
  };
  auto end_exclusive = [&](size_t i) -> uint64_t {
    // ~0 stands in for "end of space" (intervals never reach it in use).
    return i + 1 < n ? first_keys_[i + 1] : ~0ULL;
  };

  size_t leaf = 0;
  size_t last_counted = n;  // sentinel: nothing counted yet
  for (const Run& run : runs) {
    // Skip leaves entirely before the run.
    while (leaf + 1 < n && end_exclusive(leaf) <= run.lo) ++leaf;
    // Count all leaves intersecting [run.lo, run.hi].
    size_t k = leaf;
    while (k < n && start_of(k) <= run.hi) {
      if (end_exclusive(k) > run.lo) {
        if (last_counted != k) {
          ++estimate.pages;
          last_counted = k;
        }
      }
      ++k;
    }
    if (k > leaf) leaf = k - 1;  // the next run may share leaf k-1
  }
  return estimate;
}

}  // namespace probe::index
