#include "index/cost_model.h"

#include <algorithm>
#include <cassert>

#include "btree/external_sort.h"
#include "decompose/analysis.h"
#include "decompose/decomposer.h"

namespace probe::index {

CostModel CostModel::FromIndex(const ZkdIndex& index) {
  CostModel model;
  model.grid_ = index.grid();
  const int total = model.grid_.total_bits();
  for (const auto& leaf : index.LeafPartitions()) {
    model.first_keys_.push_back(leaf.first_key.ToZValue().RangeLo(total));
  }
  if (!model.first_keys_.empty()) {
    model.avg_leaf_entries_ = static_cast<double>(index.size()) /
                              static_cast<double>(model.first_keys_.size());
  }
  return model;
}

std::vector<CostModel::Run> CostModel::RunsForBox(
    const geometry::GridBox& box, int max_element_depth,
    uint64_t* elements_used) const {
  decompose::DecomposeOptions options;
  options.max_depth = max_element_depth;
  const auto elements = decompose::DecomposeBox(grid_, box, options);
  *elements_used = elements.size();
  const int total = grid_.total_bits();
  std::vector<Run> runs;
  for (const auto& e : elements) {
    const uint64_t lo = e.RangeLo(total);
    const uint64_t hi = e.RangeHi(total);
    if (!runs.empty() && runs.back().hi + 1 == lo) {
      runs.back().hi = hi;
    } else {
      runs.push_back(Run{lo, hi});
    }
  }
  return runs;
}

uint64_t CostModel::CountLeafPages(const std::vector<Run>& runs) const {
  // Leaf i owns the key interval [start_i, start_{i+1}) where start_0 is
  // pulled down to 0 (a seek below the first key lands on leaf 0) and the
  // last interval is open-ended. Two-pointer sweep over sorted runs.
  const size_t n = first_keys_.size();
  auto start_of = [&](size_t i) -> uint64_t {
    return i == 0 ? 0 : first_keys_[i];
  };
  auto end_exclusive = [&](size_t i) -> uint64_t {
    // ~0 stands in for "end of space" (intervals never reach it in use).
    return i + 1 < n ? first_keys_[i + 1] : ~0ULL;
  };

  uint64_t pages = 0;
  size_t leaf = 0;
  size_t last_counted = n;  // sentinel: nothing counted yet
  for (const Run& run : runs) {
    // Skip leaves entirely before the run.
    while (leaf + 1 < n && end_exclusive(leaf) <= run.lo) ++leaf;
    // Count all leaves intersecting [run.lo, run.hi].
    size_t k = leaf;
    while (k < n && start_of(k) <= run.hi) {
      if (end_exclusive(k) > run.lo) {
        if (last_counted != k) {
          ++pages;
          last_counted = k;
        }
      }
      ++k;
    }
    if (k > leaf) leaf = k - 1;  // the next run may share leaf k-1
  }
  return pages;
}

CostModel::Estimate CostModel::EstimatePages(const geometry::GridBox& box,
                                             int max_element_depth) const {
  Estimate estimate;
  estimate.full_depth =
      max_element_depth < 0 || max_element_depth >= grid_.total_bits();
  if (first_keys_.empty()) return estimate;

  // Decompose (CPU only) and coalesce elements into maximal z runs.
  const auto runs = RunsForBox(box, max_element_depth,
                               &estimate.elements_used);
  estimate.pages = CountLeafPages(runs);
  return estimate;
}

CostModel::JoinEstimate CostModel::EstimateJoinPages(
    const CostModel& s_model, const geometry::GridBox& r_box,
    const geometry::GridBox& s_box, int max_element_depth) const {
  assert(grid_ == s_model.grid_);
  JoinEstimate estimate;
  if (!r_box.Intersects(s_box)) return estimate;
  estimate.overlap = true;

  uint64_t r_elements = 0;
  uint64_t s_elements = 0;
  const auto r_runs = RunsForBox(r_box, max_element_depth, &r_elements);
  const auto s_runs = RunsForBox(s_box, max_element_depth, &s_elements);
  estimate.elements_used = r_elements + s_elements;

  // Intersect the two sorted, disjoint run lists: only z intervals both
  // boxes cover can produce join pairs.
  std::vector<Run> shared;
  size_t i = 0;
  size_t j = 0;
  while (i < r_runs.size() && j < s_runs.size()) {
    const uint64_t lo = std::max(r_runs[i].lo, s_runs[j].lo);
    const uint64_t hi = std::min(r_runs[i].hi, s_runs[j].hi);
    if (lo <= hi) {
      if (!shared.empty() && shared.back().hi + 1 == lo) {
        shared.back().hi = hi;
      } else {
        shared.push_back(Run{lo, hi});
      }
    }
    if (r_runs[i].hi < s_runs[j].hi) {
      ++i;
    } else {
      ++j;
    }
  }

  estimate.r_pages = CountLeafPages(shared);
  estimate.s_pages = s_model.CountLeafPages(shared);
  return estimate;
}

CostModel::DistanceJoinEstimate CostModel::EstimateDistanceJoinPages(
    const zorder::GridSpec& grid, uint64_t r_rows, uint64_t s_rows,
    uint64_t radius, uint64_t zone_height, uint64_t sort_budget_entries) {
  assert(grid.Valid() && grid.dims == 2);
  DistanceJoinEstimate estimate;
  const uint64_t h = zone_height != 0 ? zone_height
                                      : std::max<uint64_t>(1, radius);
  const uint64_t side = grid.side();
  estimate.zones = std::max<uint64_t>(1, (side + h - 1) / h);

  // The zone sort's I/O: a side within the sort budget never touches the
  // scratch pager; a spilling side writes every record once in run pages
  // and reads them back in the merge.
  const auto kPerPage =
      static_cast<uint64_t>(btree::ExternalSorter::kEntriesPerPage);
  for (const uint64_t rows : {r_rows, s_rows}) {
    if (rows > sort_budget_entries) {
      estimate.pages += 2 * ((rows + kPerPage - 1) / kPerPage);
    }
  }

  // Uniform-density candidate count: each R probe tests the S points in
  // an x-window of 2r+1 cells across a zone band of about 2r+h rows.
  const double area = static_cast<double>(side) * static_cast<double>(side);
  const double window = std::min(
      static_cast<double>(2 * static_cast<double>(radius) + 1) *
          (2 * static_cast<double>(radius) + static_cast<double>(h)),
      area);
  const double candidates = static_cast<double>(r_rows) *
                            static_cast<double>(s_rows) * (window / area);
  const double cap = static_cast<double>(r_rows) * static_cast<double>(s_rows);
  estimate.candidate_pairs =
      static_cast<uint64_t>(std::min(std::max(candidates, 0.0), cap));
  return estimate;
}

int CostModel::EstimateDepthCap(const zorder::GridSpec& grid,
                                const geometry::GridBox& box,
                                uint64_t element_budget) {
  assert(box.dims() == grid.dims);
  std::vector<uint64_t> extents;
  extents.reserve(static_cast<size_t>(box.dims()));
  for (int d = 0; d < box.dims(); ++d) {
    extents.push_back(box.range(d).width());
  }
  // E(U,V) of the anchored analysis is the full-depth yardstick; when it
  // already fits the budget no cap is needed (the exact element set is
  // cheap enough to generate and estimate with).
  if (decompose::AnchoredBoxElementCount(grid, extents) <= element_budget) {
    return -1;
  }
  // Otherwise walk down from full depth to the finest cap whose worst-case
  // element count fits. Depth 0 always fits (a single element).
  for (int depth = grid.total_bits() - 1; depth > 0; --depth) {
    if (decompose::CappedElementUpperBound(grid, extents, depth) <=
        element_budget) {
      return depth;
    }
  }
  return 0;
}

}  // namespace probe::index
