#include "index/object_index.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "decompose/generator.h"
#include "geometry/primitives.h"
#include "zorder/shuffle.h"

namespace probe::index {

namespace {

using btree::ZKey;
using zorder::ZValue;

// Hashable identity of a z value, for the per-query ancestor memo.
struct ZId {
  uint64_t raw;
  int len;
  bool operator==(const ZId&) const = default;
};

struct ZIdHash {
  size_t operator()(const ZId& z) const {
    return std::hash<uint64_t>()(z.raw * 31 + static_cast<uint64_t>(z.len));
  }
};

}  // namespace

ZkdObjectIndex::ZkdObjectIndex(const zorder::GridSpec& grid,
                               storage::BufferPool* pool,
                               const btree::BTreeConfig& config)
    : grid_(grid), tree_(pool, config) {
  assert(grid_.Valid());
}

uint64_t ZkdObjectIndex::Insert(uint64_t id,
                                const geometry::SpatialObject& object,
                                const decompose::DecomposeOptions& options) {
  uint64_t inserted = 0;
  for (const ZValue& element : Decompose(grid_, object, options)) {
    tree_.Insert(ZKey::FromZValue(element), id);
    ++inserted;
  }
  element_counts_[id] += inserted;
  return inserted;
}

uint64_t ZkdObjectIndex::Remove(uint64_t id,
                                const geometry::SpatialObject& object,
                                const decompose::DecomposeOptions& options) {
  uint64_t removed = 0;
  for (const ZValue& element : Decompose(grid_, object, options)) {
    if (tree_.Delete(ZKey::FromZValue(element), id)) ++removed;
  }
  auto it = element_counts_.find(id);
  if (it != element_counts_.end()) {
    it->second -= removed;
    if (it->second == 0) element_counts_.erase(it);
  }
  return removed;
}

std::vector<uint64_t> ZkdObjectIndex::QueryOverlapping(
    const geometry::SpatialObject& probe, ObjectQueryStats* stats,
    const decompose::DecomposeOptions& options) const {
  const int total = grid_.total_bits();
  std::vector<uint64_t> hits;
  decompose::ElementGenerator generator(grid_, probe, options);
  btree::BTree::Cursor cursor(&tree_);
  std::unordered_set<ZId, ZIdHash> checked_prefixes;
  uint64_t entries_scanned = 0;
  uint64_t prefix_lookups = 0;
  uint64_t probe_elements = 0;
  uint64_t ancestor_leaf_loads = 0;
  uint64_t ancestor_internal_loads = 0;

  // Collects stored elements that *strictly contain* `element`: they are
  // exactly the proper prefixes of its z value, found by point lookups.
  // (They precede the element in key order, so the forward merge below
  // cannot see them.) The memo keeps shared ancestors from being probed
  // once per probe element.
  auto check_ancestors = [&](const ZValue& element) {
    for (int len = 0; len < element.length(); ++len) {
      const ZValue prefix = element.Prefix(len);
      if (!checked_prefixes.insert(ZId{prefix.raw(), len}).second) continue;
      const ZKey key = ZKey::FromZValue(prefix);
      ++prefix_lookups;
      btree::BTree::Cursor probe_cursor(&tree_);
      if (probe_cursor.Seek(key)) {
        while (probe_cursor.entry().key == key) {
          hits.push_back(probe_cursor.entry().payload);
          if (!probe_cursor.Next()) break;
        }
      }
      ancestor_leaf_loads += probe_cursor.leaf_loads();
      ancestor_internal_loads += probe_cursor.internal_loads();
    }
  };

  ZValue element;
  bool have_element = generator.Next(&element);
  if (have_element) {
    ++probe_elements;
    check_ancestors(element);
    bool have_entry = cursor.Seek(ZKey::FromZValue(element));
    while (have_entry && have_element) {
      const ZValue entry_z = cursor.entry().key.ToZValue();
      ++entries_scanned;
      if (element.Contains(entry_z)) {
        // The stored element lies inside the probe element: overlap.
        hits.push_back(cursor.entry().payload);
        have_entry = cursor.Next();
        continue;
      }
      // The entry is past the probe element's subtree: advance the probe
      // to the first element that could still reach this entry, skipping
      // the dead gap on both sequences.
      const uint64_t entry_lo = entry_z.RangeLo(total);
      have_element = generator.SeekForward(entry_lo, &element);
      if (!have_element) break;
      ++probe_elements;
      check_ancestors(element);
      const ZKey element_key = ZKey::FromZValue(element);
      if (cursor.entry().key < element_key) {
        have_entry = cursor.Seek(element_key);
      }
    }
  }

  std::sort(hits.begin(), hits.end());
  hits.erase(std::unique(hits.begin(), hits.end()), hits.end());
  if (stats != nullptr) {
    stats->leaf_pages = cursor.leaf_loads() + ancestor_leaf_loads;
    stats->internal_pages = cursor.internal_loads() + ancestor_internal_loads;
    stats->entries_scanned = entries_scanned;
    stats->probe_elements = probe_elements;
    stats->prefix_lookups = prefix_lookups;
    stats->result_objects = hits.size();
  }
  return hits;
}

std::vector<uint64_t> ZkdObjectIndex::QueryBox(const geometry::GridBox& box,
                                               ObjectQueryStats* stats) const {
  const geometry::BoxObject probe(box);
  return QueryOverlapping(probe, stats);
}

std::vector<uint64_t> ZkdObjectIndex::QueryContained(
    const geometry::GridBox& window, ObjectQueryStats* stats) const {
  // An object is contained in the window iff all of its elements are; an
  // element is inside the window iff some (maximal) window element
  // contains it, which is exactly the forward-merge containment case — so
  // no ancestor lookups are needed here, only the skip merge, counting
  // covered elements per object.
  const int total = grid_.total_bits();
  const geometry::BoxObject probe(window);
  decompose::ElementGenerator generator(grid_, probe);
  btree::BTree::Cursor cursor(&tree_);
  std::unordered_map<uint64_t, uint64_t> covered;
  uint64_t entries_scanned = 0;
  uint64_t probe_elements = 0;

  ZValue element;
  bool have_element = generator.Next(&element);
  if (have_element) {
    ++probe_elements;
    bool have_entry = cursor.Seek(ZKey::FromZValue(element));
    while (have_entry && have_element) {
      const ZValue entry_z = cursor.entry().key.ToZValue();
      ++entries_scanned;
      if (element.Contains(entry_z)) {
        ++covered[cursor.entry().payload];
        have_entry = cursor.Next();
        continue;
      }
      const uint64_t entry_lo = entry_z.RangeLo(total);
      have_element = generator.SeekForward(entry_lo, &element);
      if (!have_element) break;
      ++probe_elements;
      const ZKey element_key = ZKey::FromZValue(element);
      if (cursor.entry().key < element_key) {
        have_entry = cursor.Seek(element_key);
      }
    }
  }

  std::vector<uint64_t> hits;
  for (const auto& [id, count] : covered) {
    auto it = element_counts_.find(id);
    if (it != element_counts_.end() && it->second == count) {
      hits.push_back(id);
    }
  }
  std::sort(hits.begin(), hits.end());
  if (stats != nullptr) {
    stats->leaf_pages = cursor.leaf_loads();
    stats->internal_pages = cursor.internal_loads();
    stats->entries_scanned = entries_scanned;
    stats->probe_elements = probe_elements;
    stats->prefix_lookups = 0;
    stats->result_objects = hits.size();
  }
  return hits;
}

std::vector<uint64_t> ZkdObjectIndex::QueryPoint(
    const geometry::GridPoint& point, ObjectQueryStats* stats) const {
  // A cell is covered by exactly the stored elements whose z values are
  // prefixes of the cell's full-resolution z value.
  const ZValue cell = Shuffle(grid_, point.coords());
  std::vector<uint64_t> hits;
  uint64_t prefix_lookups = 0;
  uint64_t leaf_pages = 0;
  uint64_t internal_pages = 0;
  for (int len = 0; len <= cell.length(); ++len) {
    const ZKey key = ZKey::FromZValue(cell.Prefix(len));
    ++prefix_lookups;
    btree::BTree::Cursor cursor(&tree_);
    if (cursor.Seek(key)) {
      while (cursor.entry().key == key) {
        hits.push_back(cursor.entry().payload);
        if (!cursor.Next()) break;
      }
    }
    leaf_pages += cursor.leaf_loads();
    internal_pages += cursor.internal_loads();
  }
  std::sort(hits.begin(), hits.end());
  hits.erase(std::unique(hits.begin(), hits.end()), hits.end());
  if (stats != nullptr) {
    stats->prefix_lookups = prefix_lookups;
    stats->leaf_pages = leaf_pages;
    stats->internal_pages = internal_pages;
    stats->result_objects = hits.size();
  }
  return hits;
}

}  // namespace probe::index
