#ifndef PROBE_INDEX_ZKD_INDEX_H_
#define PROBE_INDEX_ZKD_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include <memory>

#include "btree/btree.h"
#include "btree/external_sort.h"
#include "decompose/decomposer.h"
#include "decompose/generator.h"
#include "geometry/box.h"
#include "geometry/object.h"
#include "geometry/point.h"
#include "geometry/primitives.h"
#include "probe/check.h"
#include "util/thread_pool.h"
#include "zorder/grid.h"

/// \file
/// The zkd B+-tree: the paper's point index and its range-search merge.
///
/// Points are stored in a prefix B+-tree keyed by their full-resolution z
/// values (Section 3.3 step 1). A query object is decomposed into elements
/// on demand (steps 2); the merge of the point sequence P and the element
/// sequence B (step 3) — with the random-access skipping optimization —
/// answers the query. Three merge strategies are provided so the benches
/// can ablate the optimizations the paper describes:
///
///  * kSkipMerge  — the paper's algorithm: lazy element generation plus
///                  two-sided random-access skipping.
///  * kPlainMerge — the unoptimized O(|P| + |B|) merge of step 3, scanning
///                  both sequences end to end.
///  * kBigMin     — no decomposition at all: skip directly with the
///                  BIGMIN computation over the query box's z range.

namespace probe::index {

/// A point plus its record identifier.
struct PointRecord {
  geometry::GridPoint point;
  uint64_t id = 0;
};

/// Work and I/O counters for one query.
struct QueryStats {
  /// Leaf ("data") pages entered — the paper's page-access metric.
  uint64_t leaf_pages = 0;
  /// Internal pages touched by Seek descents.
  uint64_t internal_pages = 0;
  /// Entries examined during the merge.
  uint64_t points_scanned = 0;
  /// Elements of the query object produced by the generator.
  uint64_t elements_generated = 0;
  /// Classifier calls spent producing those elements.
  uint64_t classify_calls = 0;
  /// Random accesses (Seek) performed on the point sequence.
  uint64_t point_seeks = 0;
  /// Matching points reported.
  uint64_t results = 0;
  /// Entries residing on the leaf pages entered.
  uint64_t entries_on_touched_pages = 0;
  /// Aggregate pushdown: elements counted wholesale — their entries were
  /// summed from run lengths and page headers, never decoded into rows.
  uint64_t contained_elements = 0;
  /// Rows an aggregate had to materialize and verify individually (only
  /// depth-capped decompositions, whose boundary elements overcover).
  uint64_t materialized_rows = 0;

  /// The paper's efficiency measure: fraction of retrieved data that was
  /// relevant (results / entries_on_touched_pages); 1 when nothing was
  /// retrieved.
  double Efficiency() const {
    if (entries_on_touched_pages == 0) return 1.0;
    return static_cast<double>(results) /
           static_cast<double>(entries_on_touched_pages);
  }
};

/// Options for RangeSearch / SearchObject.
struct SearchOptions {
  enum class Merge { kSkipMerge, kPlainMerge, kBigMin };
  Merge merge = Merge::kSkipMerge;

  /// Decomposition depth cap passed to the element generator (-1 = full
  /// resolution). Coarser caps trade extra candidate verification for
  /// fewer elements; with verification enabled results stay exact.
  int max_element_depth = -1;

  /// Verify each candidate point against the query object before reporting
  /// it. Required for exactness when max_element_depth caps decomposition
  /// (boundary elements may cover non-matching cells); free for boxes at
  /// full depth where elements are exact.
  bool verify_candidates = true;
};

/// Point index over a z-ordered prefix B+-tree.
class ZkdIndex {
 public:
  /// Creates an empty index. The pool must outlive the index.
  ZkdIndex(const zorder::GridSpec& grid, storage::BufferPool* pool,
           const btree::BTreeConfig& config = {});

  ZkdIndex(ZkdIndex&&) = default;

  /// Bulk-loads an index from `points` (any order; sorted internally).
  static ZkdIndex Build(const zorder::GridSpec& grid,
                        storage::BufferPool* pool,
                        std::span<const PointRecord> points,
                        const btree::BTreeConfig& config = {},
                        double fill = 1.0);

  /// Bulk-loads via external merge sort: at most `memory_budget` records
  /// are held in memory at once; sorted runs spill to `scratch` and the
  /// merge feeds the tree builder directly ("existing sort utilities can
  /// be used to create z ordered sequences", Section 4 — at any scale).
  /// `sort_stats` may be null.
  static ZkdIndex BuildExternal(const zorder::GridSpec& grid,
                                storage::BufferPool* pool,
                                std::span<const PointRecord> points,
                                storage::Pager* scratch, size_t memory_budget,
                                const btree::BTreeConfig& config = {},
                                double fill = 1.0,
                                btree::ExternalSortStats* sort_stats = nullptr);

  /// Snapshot of the underlying tree's durable identity. Flush the pool
  /// (and sync the pager) before persisting it; see BTree::DetachState.
  btree::BTree::PersistentState DetachState() const {
    return tree_.DetachState();
  }

  /// Re-opens an index previously described by DetachState() over a pool
  /// whose pager holds the flushed pages — the reopen half of the
  /// durability story (recovery hands this the state blob of the last
  /// committed batch). Grid and config must match the original build.
  static ZkdIndex Attach(const zorder::GridSpec& grid,
                         storage::BufferPool* pool,
                         const btree::BTree::PersistentState& state,
                         const btree::BTreeConfig& config = {});

  /// Inserts one point (step 1 of Section 3.3: shuffle, then store).
  void Insert(const geometry::GridPoint& point, uint64_t id);

  /// Removes one (point, id) entry; false if absent.
  bool Delete(const geometry::GridPoint& point, uint64_t id);

  /// Range query: ids of all points inside `box` (Figure 5). `stats` may
  /// be null.
  std::vector<uint64_t> RangeSearch(const geometry::GridBox& box,
                                    QueryStats* stats = nullptr,
                                    const SearchOptions& options = {}) const;

  /// General spatial search: ids of all points inside an arbitrary object
  /// (the object is decomposed on demand). kBigMin is not applicable here;
  /// it falls back to kSkipMerge.
  std::vector<uint64_t> SearchObject(const geometry::SpatialObject& object,
                                     QueryStats* stats = nullptr,
                                     const SearchOptions& options = {}) const;

  /// COUNT(*) over the z interval [zlo, zhi] (inclusive, full-resolution
  /// integers): counts entries without materializing any row. Leaves
  /// wholly inside the interval contribute their header count alone —
  /// no entry on them is even decoded.
  uint64_t CountRange(uint64_t zlo, uint64_t zhi,
                      QueryStats* stats = nullptr) const;

  /// COUNT(*) of points inside `box` — the aggregate pushdown. At full
  /// decomposition depth every element is exactly contained in the box,
  /// so each element's points are counted via CountRange-style run and
  /// header arithmetic (stats->contained_elements) and zero rows are
  /// materialized. A depth-capped decomposition must verify candidates,
  /// so its rows materialize (stats->materialized_rows) but the count
  /// stays exact. Matches RangeSearch(...).size() bit for bit.
  uint64_t CountBox(const geometry::GridBox& box, QueryStats* stats = nullptr,
                    const SearchOptions& options = {}) const;

  /// Partial-match query (Section 5.3.1): `fixed[i]` pins attribute i to a
  /// value; unset attributes are unrestricted.
  std::vector<uint64_t> PartialMatch(
      std::span<const std::optional<uint32_t>> fixed,
      QueryStats* stats = nullptr, const SearchOptions& options = {}) const;

  /// Partitioned range query. The query box's z span is cut into
  /// `partitions` contiguous z intervals (split points snapped into the box
  /// with BIGMIN); each partition runs the ordinary merge over the elements
  /// whose z range *starts* inside it — elements are disjoint z intervals
  /// (Section 3.2), so every element is owned by exactly one partition and
  /// no point is reported twice. Partitions execute concurrently on `pool`
  /// and the per-partition results are concatenated in z order: the output
  /// is bitwise-identical to RangeSearch. `partitions` <= 0 uses one per
  /// pool lane. kPlainMerge has no partitioned form and is run as
  /// kSkipMerge; kBigMin partitions the same way over its point skips.
  /// Cumulative `stats` are summed over partitions (page counts include
  /// pages touched by several partitions once per partition).
  std::vector<uint64_t> ParallelRangeSearch(
      const geometry::GridBox& box, util::ThreadPool& pool,
      int partitions = 0, QueryStats* stats = nullptr,
      const SearchOptions& options = {}) const;

  /// Partitioned general spatial search: ParallelRangeSearch for an
  /// arbitrary object. The whole z span of the space is partitioned (an
  /// object has no precomputed corner z values); element ownership and
  /// result order are as in ParallelRangeSearch — output is identical to
  /// SearchObject. kBigMin is not applicable and falls back to kSkipMerge.
  std::vector<uint64_t> ParallelSearchObject(
      const geometry::SpatialObject& object, util::ThreadPool& pool,
      int partitions = 0, QueryStats* stats = nullptr,
      const SearchOptions& options = {}) const;

  /// Streaming range query: pulls matching points one at a time instead of
  /// materializing the result vector — the shape a query executor's
  /// iterator tree wants. Runs the same skip merge as RangeSearch.
  class RangeCursor {
   public:
    /// The index and box must outlive the cursor.
    RangeCursor(const ZkdIndex& index, const geometry::GridBox& box);
    ~RangeCursor();

    RangeCursor(RangeCursor&&) = default;

    /// Fetches the next match (ascending z order). Returns false at the
    /// end. `point` may be null when only ids are wanted.
    bool Next(uint64_t* id, geometry::GridPoint* point = nullptr);

    /// Work counters so far (results counts the Next() successes).
    const QueryStats& stats() const { return stats_; }

   private:
    const ZkdIndex& index_;
    geometry::BoxObject box_object_;
    std::unique_ptr<decompose::ElementGenerator> generator_;
    std::unique_ptr<btree::BTree::Cursor> cursor_;
    uint64_t zlo_ = 0;
    uint64_t zhi_ = 0;
    bool have_element_ = false;
    bool have_point_ = false;
    QueryStats stats_;
    // Audit state: matches must stream in non-decreasing z order.
    check::ZMonotone match_order_;
  };

  /// First key of every leaf page, in z order, plus per-leaf entry counts.
  /// The bench for Figure 6 maps grid cells to leaves with this to draw the
  /// partitioning of space induced by page boundaries.
  struct LeafInfo {
    btree::ZKey first_key;
    int entries = 0;
  };
  std::vector<LeafInfo> LeafPartitions() const;

  uint64_t size() const { return tree_.size(); }
  const zorder::GridSpec& grid() const { return grid_; }

  /// The underlying B+-tree. Cursors mutate buffer-pool state, so the
  /// reference is non-const even from a const index (tree_ is mutable).
  btree::BTree& tree() const { return tree_; }

 private:
  // Tag constructor for Attach: adopts an existing tree instead of
  // creating an empty one.
  ZkdIndex(const zorder::GridSpec& grid, btree::BTree&& tree)
      : grid_(grid), tree_(std::move(tree)) {}

  std::vector<uint64_t> SearchDecomposed(const geometry::SpatialObject& object,
                                         QueryStats* stats,
                                         const SearchOptions& options) const;
  std::vector<uint64_t> SearchBigMin(const geometry::GridBox& box,
                                     QueryStats* stats) const;

  // One partition of the skip merge: runs the Section 3.3 merge over the
  // elements of `object` whose z range starts in [owned_lo, owned_hi]
  // (both inclusive, full-resolution z integers). With [0, ~0] this *is*
  // the serial skip merge. Appends matches to `results` and accumulates
  // counters into `stats` (required non-null).
  void MergePartition(const geometry::SpatialObject& object,
                      uint64_t owned_lo, uint64_t owned_hi,
                      const SearchOptions& options,
                      std::vector<uint64_t>* results, QueryStats* stats) const;

  // One partition of the BIGMIN merge: scans points with z in
  // [from, upto] against the box [zmin, zmax] corners.
  void BigMinPartition(uint64_t zmin, uint64_t zmax, uint64_t from,
                       uint64_t upto, std::vector<uint64_t>* results,
                       QueryStats* stats) const;

  // Shared fan-out: splits ownership of the element sequence at
  // `split_points` (ascending) and merges partitions on `pool`.
  std::vector<uint64_t> ParallelDecomposed(
      const geometry::SpatialObject& object,
      std::span<const uint64_t> split_points, util::ThreadPool& pool,
      QueryStats* stats, const SearchOptions& options) const;

  zorder::GridSpec grid_;
  mutable btree::BTree tree_;
};

}  // namespace probe::index

#endif  // PROBE_INDEX_ZKD_INDEX_H_
