#ifndef PROBE_INDEX_DURABLE_INDEX_H_
#define PROBE_INDEX_DURABLE_INDEX_H_

#include <memory>
#include <optional>
#include <span>
#include <string>

#include "index/zkd_index.h"
#include "storage/buffer_pool.h"
#include "storage/fault_pager.h"
#include "storage/file_pager.h"
#include "storage/recovery.h"
#include "storage/txn_pager.h"
#include "storage/wal.h"

/// \file
/// The crash-safe zkd index: the full durability stack in one object.
///
/// Assembles, bottom to top: a FilePager on `path` (the database file), a
/// FaultInjectingPager (disarmed unless a test arms it), a Wal on
/// `path + ".wal"`, a TxnPager enforcing no-steal / force-on-checkpoint,
/// a BufferPool, and the ZkdIndex. Opening always runs recovery first, so
/// a database killed at any instant — mid-batch, mid-append, mid-
/// checkpoint — comes back as of its last committed batch.
///
/// The unit of atomicity is the **batch**: Apply() runs a group of
/// inserts/deletes, flushes the dirty pages through the log, and commits
/// them with the tree's re-attach state serialized into the commit
/// record. Either the whole batch is recoverable or none of it is.
/// Checkpoint() bounds the log (and recovery time) by forcing committed
/// pages into the database file and restarting the log.
///
/// Queries go through index(): the planner and executor open recovered
/// indexes exactly like freshly built ones — durability is invisible
/// above the pager, which is the paper's "ordinary machinery" argument
/// applied to recovery.

namespace probe::index {

/// A ZkdIndex with write-ahead logging and crash recovery.
class DurableIndex {
 public:
  struct Options {
    btree::BTreeConfig config;
    /// Buffer pool frames.
    size_t pool_pages = 256;
    storage::EvictionPolicy policy = storage::EvictionPolicy::kLru;
    /// Wipe any existing database and log instead of recovering them.
    bool truncate = false;
  };

  /// One mutation of a batch.
  struct Op {
    enum class Kind { kInsert, kDelete };
    Kind kind = Kind::kInsert;
    geometry::GridPoint point;
    uint64_t id = 0;

    static Op Insert(const geometry::GridPoint& p, uint64_t id) {
      return Op{Kind::kInsert, p, id};
    }
    static Op Delete(const geometry::GridPoint& p, uint64_t id) {
      return Op{Kind::kDelete, p, id};
    }
  };

  /// Opens (creating, recovering, or re-attaching) the database at `path`;
  /// the log lives beside it at `path + ".wal"`. Check ok() before use.
  DurableIndex(const zorder::GridSpec& grid, const std::string& path,
               const Options& options);
  DurableIndex(const zorder::GridSpec& grid, const std::string& path)
      : DurableIndex(grid, path, Options()) {}

  DurableIndex(const DurableIndex&) = delete;
  DurableIndex& operator=(const DurableIndex&) = delete;

  /// False when the files could not be opened, the stored metadata is
  /// corrupt, or it disagrees with `grid`/config.
  bool ok() const { return ok_; }

  /// What recovery did when this handle opened.
  const storage::RecoveryResult& recovery() const { return recovery_; }

  /// The live index, for queries and the planner. Requires ok().
  ZkdIndex& index() { return *index_; }
  const ZkdIndex& index() const { return *index_; }

  /// Applies `ops` in order and commits them as one atomic batch. Returns
  /// false on a dead engine: the batch is then not durable (and after a
  /// reopen it will have vanished entirely).
  bool Apply(std::span<const Op> ops);

  /// Single-op batches.
  bool Insert(const geometry::GridPoint& point, uint64_t id) {
    const Op op = Op::Insert(point, id);
    return Apply({&op, 1});
  }
  bool Delete(const geometry::GridPoint& point, uint64_t id) {
    const Op op = Op::Delete(point, id);
    return Apply({&op, 1});
  }

  /// Forces committed state into the database file and restarts the log.
  bool Checkpoint();

  /// Test seams: the log (arm WalFaultPlan) and the injected base pager
  /// (arm FaultPlan); the transactional pager for its counters.
  storage::Wal& wal() { return *wal_; }
  storage::FaultInjectingPager& base_faults() { return *fault_; }
  storage::TxnPager& txn_pager() { return *txn_; }
  storage::BufferPool& pool() { return *pool_; }

  const std::string& path() const { return path_; }
  const std::string& wal_path() const { return wal_path_; }

 private:
  // The commit/checkpoint metadata blob: magic, grid shape, tree state.
  std::vector<uint8_t> MetaBlob() const;

  // Flushes dirty pages into the log and appends a commit record.
  bool CommitBatch();

  zorder::GridSpec grid_;
  btree::BTreeConfig config_;
  std::string path_;
  std::string wal_path_;
  std::unique_ptr<storage::FilePager> base_;
  std::unique_ptr<storage::FaultInjectingPager> fault_;
  std::unique_ptr<storage::Wal> wal_;
  std::unique_ptr<storage::TxnPager> txn_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::optional<ZkdIndex> index_;
  storage::RecoveryResult recovery_;
  bool ok_ = false;
};

}  // namespace probe::index

#endif  // PROBE_INDEX_DURABLE_INDEX_H_
