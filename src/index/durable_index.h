#ifndef PROBE_INDEX_DURABLE_INDEX_H_
#define PROBE_INDEX_DURABLE_INDEX_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "index/zkd_index.h"
#include "storage/buffer_pool.h"
#include "storage/fault_pager.h"
#include "storage/file_pager.h"
#include "storage/recovery.h"
#include "storage/txn_pager.h"
#include "storage/wal.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

/// \file
/// The crash-safe zkd index: the full durability stack in one object.
///
/// Assembles, bottom to top: a FilePager on `path` (the database file), a
/// FaultInjectingPager (disarmed unless a test arms it), a Wal on
/// `path + ".wal"`, a TxnPager enforcing no-steal / force-on-checkpoint,
/// a BufferPool, and the ZkdIndex. Opening always runs recovery first, so
/// a database killed at any instant — mid-batch, mid-append, mid-
/// checkpoint — comes back as of its last committed batch.
///
/// The unit of atomicity is the **batch**: Apply() runs a group of
/// inserts/deletes, flushes the dirty pages through the log, and commits
/// them with the tree's re-attach state serialized into the commit
/// record. Either the whole batch is recoverable or none of it is.
/// Checkpoint() bounds the log (and recovery time) by forcing committed
/// pages into the database file and restarting the log.
///
/// ## Concurrency: group commit and epoch snapshots
///
/// Apply() is safe to call from many threads. Mutation itself is
/// serialized by an internal apply lock (the tree is not a concurrent
/// structure), but the expensive part of a commit — the fsync — is not
/// under it: Apply appends its commit record, releases the lock, and
/// joins the WAL's group commit, so K writers pay ~one fsync per *group*
/// rather than one each (see Wal::GroupCommit).
///
/// Every committed batch advances an **epoch** (batch k commits as epoch
/// k, counting from the empty-tree commit at epoch 1). An epoch is
/// *published* once its commit record is durable; readers never see an
/// acked-but-not-yet-durable epoch. CreateSnapshot() pins the newest
/// published epoch and returns a self-contained read view — its own
/// SnapshotPager (frozen at that epoch's page count), its own BufferPool,
/// and a ZkdIndex attached from that epoch's recorded tree state — so
/// RangeSearch/CountBox/KNearest on the snapshot return exactly what a
/// serial replay of batches 1..E would, no matter how many writers are
/// landing batches concurrently. Pinned epochs block version GC and
/// Checkpoint's cut-over; drop the Snapshot to release the pin.
///
/// Queries that don't need isolation from concurrent writers can still go
/// through index() — but index() is the *live* tree, synchronized with
/// nothing; use it only single-threaded or from tests.

namespace probe::index {

/// A ZkdIndex with write-ahead logging, crash recovery, group-committed
/// concurrent writers, and epoch-pinned snapshot reads.
class DurableIndex {
 public:
  struct Options {
    btree::BTreeConfig config;
    /// Buffer pool frames (the writer's pool).
    size_t pool_pages = 256;
    /// Frames for each snapshot's private pool.
    size_t snapshot_pool_pages = 64;
    storage::EvictionPolicy policy = storage::EvictionPolicy::kLru;
    /// Wipe any existing database and log instead of recovering them.
    bool truncate = false;
  };

  /// One mutation of a batch.
  struct Op {
    enum class Kind { kInsert, kDelete };
    Kind kind = Kind::kInsert;
    geometry::GridPoint point;
    uint64_t id = 0;

    static Op Insert(const geometry::GridPoint& p, uint64_t id) {
      return Op{Kind::kInsert, p, id};
    }
    static Op Delete(const geometry::GridPoint& p, uint64_t id) {
      return Op{Kind::kDelete, p, id};
    }
  };

  class Snapshot;

  /// Opens (creating, recovering, or re-attaching) the database at `path`;
  /// the log lives beside it at `path + ".wal"`. Check ok() before use.
  DurableIndex(const zorder::GridSpec& grid, const std::string& path,
               const Options& options);
  DurableIndex(const zorder::GridSpec& grid, const std::string& path)
      : DurableIndex(grid, path, Options()) {}

  DurableIndex(const DurableIndex&) = delete;
  DurableIndex& operator=(const DurableIndex&) = delete;

  /// All Snapshots must be dropped before the index is destroyed (they
  /// hold raw pointers into the stack).
  ~DurableIndex() = default;

  /// False when the files could not be opened, the stored metadata is
  /// corrupt, or it disagrees with `grid`/config.
  bool ok() const { return ok_; }

  /// What recovery did when this handle opened.
  const storage::RecoveryResult& recovery() const { return recovery_; }

  /// The live index — the writer's view, synchronized with nothing. For
  /// single-threaded use and tests; concurrent readers use CreateSnapshot.
  /// Requires ok().
  ZkdIndex& index() { return *index_; }
  const ZkdIndex& index() const { return *index_; }

  /// Applies `ops` in order and commits them as one atomic batch, joining
  /// the WAL's group commit for the fsync. Thread-safe. Returns false on a
  /// dead engine: the batch is then not durable (and after a reopen it
  /// will have vanished entirely). On success `*epoch_out` (if given) is
  /// the batch's now-published epoch.
  bool Apply(std::span<const Op> ops, uint64_t* epoch_out = nullptr);

  /// Single-op batches.
  bool Insert(const geometry::GridPoint& point, uint64_t id) {
    const Op op = Op::Insert(point, id);
    return Apply({&op, 1});
  }
  bool Delete(const geometry::GridPoint& point, uint64_t id) {
    const Op op = Op::Delete(point, id);
    return Apply({&op, 1});
  }

  /// Pins the newest published epoch and returns a consistent read view
  /// of it (see file comment). Thread-safe; cheap when a snapshot of the
  /// same epoch is already live (they share one view). Blocks while a
  /// checkpoint is draining. !ok() result only on an engine that never
  /// opened.
  Snapshot CreateSnapshot();

  /// Newest published (durable, reader-visible) epoch. The empty-tree
  /// commit of a fresh database is epoch 1.
  uint64_t published_epoch() const;

  /// Point count of the newest published epoch (what a fresh snapshot's
  /// index().size() would report).
  uint64_t published_size() const;

  /// Forces committed state into the database file and restarts the log.
  /// Thread-safe, but **blocks until every Snapshot pin is released** —
  /// the cut-over drops all parked page versions, so no reader may still
  /// depend on one.
  bool Checkpoint();

  /// Test seams: the log (arm WalFaultPlan) and the injected base pager
  /// (arm FaultPlan); the transactional pager for its counters.
  storage::Wal& wal() { return *wal_; }
  storage::FaultInjectingPager& base_faults() { return *fault_; }
  storage::TxnPager& txn_pager() { return *txn_; }
  storage::BufferPool& pool() { return *pool_; }

  const std::string& path() const { return path_; }
  const std::string& wal_path() const { return wal_path_; }

 private:
  // Everything needed to re-open a committed epoch as a read view: the
  // tree's re-attach state and the page count its commit recorded.
  struct EpochState {
    btree::BTree::PersistentState state;
    uint32_t page_count = 0;
  };
  struct SnapshotResources;
  friend struct SnapshotResources;

  // The commit/checkpoint metadata blob for `epoch`: magic, grid shape,
  // epoch, tree state. Caller holds apply_mutex_ (reads the live tree).
  std::vector<uint8_t> MetaBlob(uint64_t epoch) const;

  // Records `epoch`'s re-attach state (pre-publication). Caller holds
  // apply_mutex_; takes epoch_mutex_.
  void RegisterEpoch(uint64_t epoch);

  // Raises the published epoch to at least `epoch` and GCs superseded
  // epoch states.
  void Publish(uint64_t epoch);

  // Snapshot teardown: unpin, GC epoch states and page versions, wake a
  // draining checkpoint.
  void ReleasePin(uint64_t epoch);

  // Drops unpinned epoch states older than the published one.
  void PruneEpochsLocked() PROBE_REQUIRES(epoch_mutex_);
  // Oldest epoch whose page versions must be kept for a pin (or the
  // published epoch when nothing is pinned) — TxnPager::TrimVersions arg.
  uint64_t TrimFloorLocked() const PROBE_REQUIRES(epoch_mutex_);

  zorder::GridSpec grid_;
  btree::BTreeConfig config_;
  std::string path_;
  std::string wal_path_;
  size_t snapshot_pool_pages_;
  std::unique_ptr<storage::FilePager> base_;
  std::unique_ptr<storage::FaultInjectingPager> fault_;
  std::unique_ptr<storage::Wal> wal_;
  std::unique_ptr<storage::TxnPager> txn_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::optional<ZkdIndex> index_;
  storage::RecoveryResult recovery_;
  bool ok_ = false;

  // Serializes mutation (tree updates, flush, commit-record append) —
  // held across everything in Apply *except* the fsync, which the WAL
  // group-batches across writers. Also guards index_ and the pool on the
  // mutation path (left unannotated: index() is a documented
  // single-threaded escape hatch). Lock order: apply_mutex_ before
  // epoch_mutex_; the TxnPager's version lock is a leaf below both.
  mutable util::Mutex apply_mutex_;

  // Epoch bookkeeping: which epochs exist, which is published, who pins
  // what.
  mutable util::Mutex epoch_mutex_;
  // Signals pin releases (to a draining checkpoint) and drain completion
  // (to blocked CreateSnapshot calls).
  util::CondVar epoch_cv_;
  uint64_t published_epoch_ PROBE_GUARDED_BY(epoch_mutex_) = 0;
  std::map<uint64_t, EpochState> states_ PROBE_GUARDED_BY(epoch_mutex_);
  std::map<uint64_t, int> pins_ PROBE_GUARDED_BY(epoch_mutex_);
  int pin_count_ PROBE_GUARDED_BY(epoch_mutex_) = 0;
  bool draining_ PROBE_GUARDED_BY(epoch_mutex_) = false;
  // Live view of the published epoch, shared by concurrent snapshots.
  std::weak_ptr<SnapshotResources> cached_ PROBE_GUARDED_BY(epoch_mutex_);
};

/// A pinned, consistent read view of one published epoch. Copyable
/// (copies share the pin); the epoch stays pinned until the last copy is
/// destroyed. Must not outlive the DurableIndex.
class DurableIndex::Snapshot {
 public:
  /// An empty (not-ok) snapshot.
  Snapshot() = default;

  bool ok() const { return res_ != nullptr; }
  /// The pinned epoch. Requires ok().
  uint64_t epoch() const;
  /// The frozen index — safe for concurrent queries with any number of
  /// writers on the owning DurableIndex. Requires ok().
  ZkdIndex& index() const;

 private:
  friend class DurableIndex;
  explicit Snapshot(std::shared_ptr<SnapshotResources> res)
      : res_(std::move(res)) {}
  std::shared_ptr<SnapshotResources> res_;
};

}  // namespace probe::index

#endif  // PROBE_INDEX_DURABLE_INDEX_H_
