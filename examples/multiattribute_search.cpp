// Multi-attribute tuple search: range and partial-match queries on a
// conventional relation via the spatial mapping of Section 2.
//
// "Given a set of tuples with k attributes, a range query asks for all
// tuples such that L_i <= A_i <= U_i." An employee relation with three
// integer attributes (age, salary band, tenure) becomes a set of points
// in a 3-d grid; range queries become boxes and partial-match queries
// become degenerate boxes. No 2-d assumption anywhere — the reduction to
// one dimension via z order carries everything.

#include <cstdio>
#include <optional>
#include <vector>

#include "geometry/box.h"
#include "index/zkd_index.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "util/rng.h"

int main() {
  using namespace probe;

  // Attributes: age in [0,127], salary band in [0,127], tenure in [0,127].
  const zorder::GridSpec grid{/*dims=*/3, /*bits_per_dim=*/7};
  storage::MemPager disk;
  storage::BufferPool pool(&disk, 64);

  // Synthesize 20000 employees with correlated attributes (salary and
  // tenure trend upward with age).
  util::Rng rng(2025);
  std::vector<index::PointRecord> employees;
  for (uint64_t id = 0; id < 20000; ++id) {
    const uint32_t age = 18 + static_cast<uint32_t>(rng.NextBelow(50));
    const double age_factor = (static_cast<double>(age) - 18.0) / 50.0;
    const uint32_t salary = static_cast<uint32_t>(std::min(
        127.0, 20.0 + 60.0 * age_factor + 18.0 * rng.NextGaussian()));
    const uint32_t tenure = static_cast<uint32_t>(
        std::min<double>(age - 18.0, rng.NextBelow(30)));
    employees.push_back(
        {geometry::GridPoint({age, salary & 127u, tenure}), id});
  }
  btree::BTreeConfig config;
  config.leaf_capacity = 20;
  auto index = index::ZkdIndex::Build(grid, &pool, employees, config);
  std::printf("%llu employee tuples on %u pages (height %d tree)\n\n",
              static_cast<unsigned long long>(index.size()), disk.page_count(),
              index.tree().height());

  // Range query: 30 <= age <= 40 AND 50 <= salary <= 80 AND 5 <= tenure <= 127.
  {
    const geometry::GridBox box =
        geometry::GridBox::Make3D(30, 40, 50, 80, 5, 127);
    index::QueryStats stats;
    const auto ids = index.RangeSearch(box, &stats);
    std::printf("range query age 30-40, salary 50-80, tenure >= 5:\n");
    std::printf("  %zu tuples, %llu pages, efficiency %.3f\n\n", ids.size(),
                static_cast<unsigned long long>(stats.leaf_pages),
                stats.Efficiency());
  }

  // Partial match: age = 35, any salary, any tenure (t=1 of k=3).
  {
    const std::optional<uint32_t> fixed[3] = {35u, std::nullopt, std::nullopt};
    index::QueryStats stats;
    const auto ids = index.PartialMatch(fixed, &stats);
    std::printf("partial match age = 35:\n");
    std::printf("  %zu tuples, %llu pages (analysis: ~N^(2/3) pages)\n\n",
                ids.size(), static_cast<unsigned long long>(stats.leaf_pages));
  }

  // Partial match fixing two attributes (t=2 of k=3).
  {
    const std::optional<uint32_t> fixed[3] = {35u, std::nullopt, 10u};
    index::QueryStats stats;
    const auto ids = index.PartialMatch(fixed, &stats);
    std::printf("partial match age = 35 AND tenure = 10:\n");
    std::printf("  %zu tuples, %llu pages (analysis: ~N^(1/3) pages)\n\n",
                ids.size(), static_cast<unsigned long long>(stats.leaf_pages));
  }

  // The same data answers queries after updates — promote someone.
  const geometry::GridPoint before({35, 60, 10});
  index.Insert(before, 999999);
  index.Delete(before, 999999);
  std::printf("dynamic updates verified (insert + delete round trip)\n");
  return 0;
}
