// The spatial query server, end to end in one process.
//
// Boots a 4-shard engine (each shard: own database file, own WAL, own
// buffer pool over a contiguous z interval), loads clustered points,
// starts the TCP server on an ephemeral port, and then talks to it the
// way a real client would:
//   1. HELLO — open a session, learn the grid and shard layout,
//   2. RANGE / COUNT / KNN — query over the wire, checking the answers
//      against direct in-process calls (they are bitwise identical),
//   3. EXPLAIN — the scatter-gather routing and per-shard plans,
//   4. GET /metrics — the same listener answers HTTP for curl/Prometheus,
//   5. GOODBYE and a graceful Stop().
//
// Run with an argument to serve instead of demo:  server 4850  binds
// 127.0.0.1:4850 and blocks until stdin closes, so you can poke it with
// the client library or curl http://127.0.0.1:4850/metrics.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "geometry/box.h"
#include "index/durable_index.h"
#include "server/client.h"
#include "server/server.h"
#include "server/sharded_engine.h"
#include "util/thread_pool.h"
#include "workload/datagen.h"

namespace {

// One blocking HTTP exchange against 127.0.0.1:port.
std::string HttpGet(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return {};
  }
  ::send(fd, request.data(), request.size(), 0);
  std::string response;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    response.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace probe;

  const zorder::GridSpec grid{/*dims=*/2, /*bits_per_dim=*/10};
  const std::string prefix =
      "/tmp/probe_server_example_" + std::to_string(::getpid());

  // ---- the engine: 4 shards over the range-partitioned z space.
  util::ThreadPool pool(4);
  server::ShardedEngineOptions engine_options;
  engine_options.shards = 4;
  engine_options.truncate = true;
  server::ShardedEngine engine(grid, prefix, engine_options, &pool);
  if (!engine.ok()) {
    std::printf("failed to open shards at %s\n", prefix.c_str());
    return 1;
  }

  workload::DataGenConfig data;
  data.count = 20000;
  data.distribution = workload::Distribution::kClustered;
  data.seed = 3;
  const auto points = workload::GeneratePoints(grid, data);
  std::vector<index::DurableIndex::Op> ops;
  for (const auto& r : points) {
    ops.push_back(index::DurableIndex::Op::Insert(r.point, r.id));
  }
  if (!engine.Apply(ops)) {
    std::printf("load failed\n");
    return 1;
  }

  // ---- the server. Port 0 = ephemeral; an argument pins it.
  server::ServerOptions options;
  options.port = argc > 1 ? std::atoi(argv[1]) : 0;
  server::Server server(&engine, options);
  if (!server.Start()) {
    std::printf("bind failed on port %d\n", options.port);
    return 1;
  }
  std::printf("serving %llu points on 4 shards at 127.0.0.1:%d\n\n",
              static_cast<unsigned long long>(engine.size()), server.port());

  if (argc > 1) {
    // Serve mode: block until stdin closes (^D or pipe end).
    std::printf("serve mode — try:\n"
                "  curl http://127.0.0.1:%d/metrics\n"
                "  curl http://127.0.0.1:%d/healthz\n"
                "press ^D to stop.\n",
                server.port(), server.port());
    char buf[256];
    while (::read(STDIN_FILENO, buf, sizeof(buf)) > 0) {
    }
    server.Stop();
    return 0;
  }

  // ---- a client session over real TCP.
  server::Client client;
  server::HelloResponse hello;
  if (!client.ConnectTcp(server.port()) || !client.Hello(&hello)) {
    std::printf("client connect failed\n");
    return 1;
  }
  std::printf("HELLO: session %llu, %u-d grid of 2^%u per dim, %d shards, "
              "%llu points\n",
              static_cast<unsigned long long>(hello.session_id), hello.dims,
              hello.bits_per_dim, hello.shards,
              static_cast<unsigned long long>(hello.point_count));

  const auto box = geometry::GridBox::Make2D(200, 420, 380, 600);
  std::vector<uint64_t> ids;
  uint64_t count = 0;
  if (!client.Range(box, &ids) || !client.Count(box, &count)) {
    std::printf("query failed: %s\n", client.last_error().c_str());
    return 1;
  }
  const bool same = ids == engine.RangeSearch(box) &&
                    count == engine.CountBox(box);
  std::printf("RANGE %s -> %zu ids; COUNT -> %llu  (%s in-process answer)\n",
              box.ToString().c_str(), ids.size(),
              static_cast<unsigned long long>(count),
              same ? "bitwise equal to" : "MISMATCH vs");

  std::vector<index::Neighbor> neighbors;
  if (client.Knn(geometry::GridPoint({512, 512}), 5, &neighbors)) {
    std::printf("KNN(512,512) k=5 ->");
    for (const auto& n : neighbors) {
      std::printf(" id %llu (d2=%llu)",
                  static_cast<unsigned long long>(n.id),
                  static_cast<unsigned long long>(n.distance2));
    }
    std::printf("\n");
  }

  std::string explain;
  if (client.Explain(box, /*count=*/false, &explain)) {
    std::printf("\nEXPLAIN over the wire:\n%s\n", explain.c_str());
  }

  // ---- the same listener answers HTTP.
  const std::string health = HttpGet(server.port(), "GET /healthz HTTP/1.0\r\n\r\n");
  const auto body = health.find("\r\n\r\n");
  std::printf("GET /healthz -> %s\n",
              body == std::string::npos ? "(no response)"
                                        : health.substr(body + 4).c_str());
  const std::string metrics =
      HttpGet(server.port(), "GET /metrics HTTP/1.0\r\n\r\n");
  std::printf("GET /metrics -> %zu bytes of Prometheus exposition\n",
              metrics.size());

  client.Goodbye();
  client.Close();
  const bool drained = server.Stop();
  std::printf("\ngraceful stop: %s\n",
              drained ? "all handlers drained" : "deadline hit");

  for (int i = 0; i < 4; ++i) {
    const std::string base = server::ShardedEngine::ShardPath(prefix, i);
    std::remove(base.c_str());
    std::remove((base + ".wal").c_str());
  }
  return same ? 0 : 1;
}
