// Quickstart: index 2-d points in z order and run range queries.
//
// The minimal end-to-end path through the library:
//   1. describe the grid (GridSpec),
//   2. load points into a ZkdIndex (a prefix B+-tree over z values,
//      backed by a simulated disk with an LRU buffer pool),
//   3. ask range queries and read the work counters.

#include <cstdio>
#include <vector>

#include "geometry/box.h"
#include "index/zkd_index.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "util/rng.h"

int main() {
  using namespace probe;

  // A 1024 x 1024 grid: two 10-bit attributes.
  const zorder::GridSpec grid{/*dims=*/2, /*bits_per_dim=*/10};

  // The storage stack: simulated disk + 64-frame LRU buffer pool.
  storage::MemPager disk;
  storage::BufferPool pool(&disk, 64);

  // 10000 random points, bulk-loaded (pages of 20 points, as in the
  // paper's experiments).
  util::Rng rng(7);
  std::vector<index::PointRecord> points;
  for (uint64_t id = 0; id < 10000; ++id) {
    points.push_back({geometry::GridPoint(
                          {static_cast<uint32_t>(rng.NextBelow(1024)),
                           static_cast<uint32_t>(rng.NextBelow(1024))}),
                      id});
  }
  btree::BTreeConfig config;
  config.leaf_capacity = 20;
  auto index = index::ZkdIndex::Build(grid, &pool, points, config);
  std::printf("indexed %llu points on %u disk pages\n",
              static_cast<unsigned long long>(index.size()),
              disk.page_count());

  // A range query is a box: find all points with 200<=x<=330, 640<=y<=760.
  const geometry::GridBox query = geometry::GridBox::Make2D(200, 330, 640, 760);
  index::QueryStats stats;
  const std::vector<uint64_t> ids = index.RangeSearch(query, &stats);

  std::printf("query %s -> %zu points\n", query.ToString().c_str(),
              ids.size());
  std::printf("  data pages accessed : %llu\n",
              static_cast<unsigned long long>(stats.leaf_pages));
  std::printf("  points scanned      : %llu\n",
              static_cast<unsigned long long>(stats.points_scanned));
  std::printf("  box elements used   : %llu\n",
              static_cast<unsigned long long>(stats.elements_generated));
  std::printf("  efficiency          : %.3f\n", stats.Efficiency());

  // The index is dynamic: insert a point inside the box and re-run.
  index.Insert(geometry::GridPoint({256, 700}), 999999);
  const auto again = index.RangeSearch(query);
  std::printf("after one insert: %zu points (was %zu)\n", again.size(),
              ids.size());

  // And points can be removed.
  index.Delete(geometry::GridPoint({256, 700}), 999999);
  std::printf("after delete    : %zu points\n", index.RangeSearch(query).size());
  return 0;
}
