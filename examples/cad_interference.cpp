// CAD: approximate interference checking for a 2-d assembly (Section 6).
//
// A gearbox cross-section: housing with two bores, two gears, a spacer.
// Every part pair is checked for interference at increasing grid
// resolutions, showing the coarse-to-fine workflow a solid modeller would
// use: cheap coarse passes clear most pairs; only near-contact pairs need
// refinement; a true collision is confirmed early at any resolution.

#include <cstdio>
#include <memory>
#include <vector>

#include "ag/interference.h"
#include "geometry/csg.h"
#include "geometry/primitives.h"

int main() {
  using namespace probe;

  // Parts in a 1024-unit work envelope (coordinates in grid cells at the
  // finest resolution; coarser grids reuse the same continuous geometry
  // scaled down by Classify on coarser cell boxes — we rebuild per grid).
  struct Part {
    const char* name;
    std::shared_ptr<const geometry::SpatialObject> shape;
  };

  auto make_parts = [](double s) -> std::vector<Part> {
    auto housing_body = std::make_shared<geometry::BoxObject>(
        geometry::GridBox::Make2D(
            static_cast<uint32_t>(0.10 * s), static_cast<uint32_t>(0.90 * s),
            static_cast<uint32_t>(0.30 * s), static_cast<uint32_t>(0.70 * s)));
    auto bore1 = std::make_shared<geometry::BallObject>(
        std::vector<double>{0.35 * s, 0.50 * s}, 0.130 * s);
    auto bore2 = std::make_shared<geometry::BallObject>(
        std::vector<double>{0.65 * s, 0.50 * s}, 0.130 * s);
    auto bores = std::make_shared<geometry::UnionObject>(
        std::vector<std::shared_ptr<const geometry::SpatialObject>>{bore1,
                                                                    bore2});
    auto housing =
        std::make_shared<geometry::DifferenceObject>(housing_body, bores);
    auto gear1 = std::make_shared<geometry::BallObject>(
        std::vector<double>{0.35 * s, 0.50 * s}, 0.120 * s);
    // The second gear is mis-assembled: its center is nudged so it grazes
    // the bore wall.
    auto gear2 = std::make_shared<geometry::BallObject>(
        std::vector<double>{0.66 * s, 0.515 * s}, 0.120 * s);
    auto spacer = std::make_shared<geometry::BoxObject>(
        geometry::GridBox::Make2D(
            static_cast<uint32_t>(0.47 * s), static_cast<uint32_t>(0.53 * s),
            static_cast<uint32_t>(0.40 * s), static_cast<uint32_t>(0.60 * s)));
    return {{"housing", housing},
            {"gear1", gear1},
            {"gear2", gear2},
            {"spacer", spacer}};
  };

  auto verdict_name = [](ag::Interference v) {
    switch (v) {
      case ag::Interference::kDisjoint:
        return "clear";
      case ag::Interference::kBoundaryContact:
        return "near-contact";
      case ag::Interference::kSolidOverlap:
        return "COLLISION";
    }
    return "?";
  };

  for (const int bits : {6, 8, 10}) {
    const zorder::GridSpec grid{2, bits};
    const double s = static_cast<double>(grid.side());
    const auto parts = make_parts(s);
    std::printf("=== resolution %llu x %llu ===\n",
                static_cast<unsigned long long>(grid.side()),
                static_cast<unsigned long long>(grid.side()));
    for (size_t i = 0; i < parts.size(); ++i) {
      for (size_t j = i + 1; j < parts.size(); ++j) {
        const auto result =
            ag::DetectInterference(grid, *parts[i].shape, *parts[j].shape);
        std::printf("  %-8s vs %-8s : %-12s (elements %llu+%llu, merge "
                    "steps %llu)\n",
                    parts[i].name, parts[j].name, verdict_name(result.verdict),
                    static_cast<unsigned long long>(result.a_elements),
                    static_cast<unsigned long long>(result.b_elements),
                    static_cast<unsigned long long>(result.merge_steps));
      }
    }
    std::printf("\n");
  }

  std::printf(
      "gear1 sits inside its bore with clearance (clear at high resolution);\n"
      "the mis-assembled gear2 collides with the housing, and the spacer is\n"
      "press-fit into the web between the bores — both flagged, the deep\n"
      "overlap after a fraction of the merge. Coarse grids report\n"
      "near-contact for snug fits; refining the grid (or handing the pair\n"
      "to an exact processor, as PROBE intends) resolves them.\n");
  return 0;
}
