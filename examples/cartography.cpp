// Cartography: the paper's Section 4 pipeline on a small map.
//
// A land-use map (polygonal parcels) is overlaid with a flood-risk map:
//   R(parcel@, zr) := Decompose(Parcels)
//   S(zone@,  zs) := Decompose(Zones)
//   RS := R [zr <> zs] S                  -- the spatial join
//   Result := RS[parcel@, zone@]          -- projection removes duplicates
// followed by the Section 6 overlay to quantify how much of each parcel
// lies in each zone.

#include <algorithm>
#include <cstdio>
#include <memory>

#include "ag/overlay.h"
#include "decompose/decomposer.h"
#include "geometry/polygon.h"
#include "relational/catalog.h"
#include "relational/operators.h"
#include "relational/spatial_join.h"

int main() {
  using namespace probe;
  const zorder::GridSpec grid{2, 9};  // 512 x 512 map

  // --- The map layers. -------------------------------------------------
  relational::ObjectCatalog catalog;
  struct Named {
    const char* name;
    uint64_t id;
  };

  auto parcel = [&](const char* name,
                    std::vector<geometry::Vec2> vs) -> Named {
    return {name, catalog.Register(std::make_shared<geometry::PolygonObject>(
                      std::move(vs)))};
  };
  const std::vector<Named> parcels = {
      parcel("orchard", {{30, 40}, {210, 60}, {190, 200}, {40, 180}}),
      parcel("vineyard", {{240, 80}, {460, 60}, {470, 230}, {260, 210}}),
      parcel("pasture", {{60, 240}, {230, 230}, {260, 430}, {40, 420}}),
      parcel("woods", {{300, 260}, {480, 280}, {440, 480}, {290, 450}}),
  };
  const std::vector<Named> zones = {
      parcel("river-floodplain", {{0, 150}, {512, 220}, {512, 300}, {0, 240}}),
      parcel("reservoir-basin", {{350, 300}, {512, 330}, {470, 512},
                                 {330, 460}}),
  };

  // --- Relations of object ids. ----------------------------------------
  relational::Relation parcels_rel(relational::Schema(
      {{"parcel", relational::ValueType::kInt}}));
  for (const auto& p : parcels) {
    parcels_rel.Add({static_cast<int64_t>(p.id)});
  }
  relational::Relation zones_rel(relational::Schema(
      {{"zone", relational::ValueType::kInt}}));
  for (const auto& z : zones) {
    zones_rel.Add({static_cast<int64_t>(z.id)});
  }

  // --- Decompose and join, exactly as in Section 4. ---------------------
  const auto r = DecomposeRelation(grid, parcels_rel, "parcel", catalog, "zr");
  const auto s = DecomposeRelation(grid, zones_rel, "zone", catalog, "zs");
  std::printf("R: %zu parcel elements, S: %zu zone elements\n", r.size(),
              s.size());

  relational::SpatialJoinStats join_stats;
  const auto rs = SpatialJoin(r, "zr", s, "zs", &join_stats);
  const std::string key_cols[] = {"parcel", "zone"};
  const auto result = Project(rs, key_cols, /*deduplicate=*/true);
  std::printf("spatial join: %llu element pairs -> %zu distinct "
              "(parcel, zone) overlaps\n\n",
              static_cast<unsigned long long>(join_stats.pairs),
              result.size());

  auto name_of = [&](uint64_t id) -> const char* {
    for (const auto& p : parcels) {
      if (p.id == id) return p.name;
    }
    for (const auto& z : zones) {
      if (z.id == id) return z.name;
    }
    return "?";
  };

  // --- Quantify with the Section 6 overlay. -----------------------------
  std::vector<ag::LabeledElement> layer_a, layer_b;
  for (const auto& p : parcels) {
    for (const auto& z :
         decompose::Decompose(grid, *catalog.Get(p.id))) {
      layer_a.push_back({z, p.id});
    }
  }
  std::sort(layer_a.begin(), layer_a.end(),
            [](const ag::LabeledElement& a, const ag::LabeledElement& b) {
              return a.z < b.z;
            });
  for (const auto& zn : zones) {
    for (const auto& z : decompose::Decompose(grid, *catalog.Get(zn.id))) {
      layer_b.push_back({z, zn.id});
    }
  }
  std::sort(layer_b.begin(), layer_b.end(),
            [](const ag::LabeledElement& a, const ag::LabeledElement& b) {
              return a.z < b.z;
            });
  const auto pieces = ag::OverlayElements(layer_a, layer_b);
  const auto areas = ag::AggregateOverlay(grid, pieces);

  std::printf("%-10s  %-18s  %10s\n", "parcel", "zone", "cells");
  std::printf("--------------------------------------------\n");
  for (const auto& area : areas) {
    std::printf("%-10s  %-18s  %10llu\n", name_of(area.a_label),
                name_of(area.b_label),
                static_cast<unsigned long long>(area.cells));
  }

  // The full coverage: how much of each parcel lies in NO flood/reservoir
  // zone (the planning answer the overlay exists for).
  const ag::CoverageReport coverage =
      OverlayCoverage(grid, layer_a, layer_b);
  std::printf("\n%-10s  %18s\n", "parcel", "unzoned cells");
  std::printf("--------------------------------\n");
  for (const auto& [label, cells] : coverage.a_only) {
    std::printf("%-10s  %18llu\n", name_of(label),
                static_cast<unsigned long long>(cells));
  }

  // Cross-check: the join found exactly the pairs the overlay measures.
  if (result.size() != areas.size()) {
    std::printf("\nmismatch between join (%zu) and overlay (%zu)!\n",
                result.size(), areas.size());
    return 1;
  }
  std::printf("\njoin and overlay agree on %zu overlapping pairs\n",
              areas.size());
  return 0;
}
