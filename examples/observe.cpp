// Observability tour: what a running query workload looks like through
// the metrics registry, the per-query trace, and EXPLAIN ANALYZE.
//
// Builds a small z-ordered index, registers the buffer pool with the
// default registry, runs a few range queries, then shows
//   1. EXPLAIN ANALYZE — estimated vs measured cost per plan node, with
//      the query's trace spans underneath;
//   2. the Prometheus text exposition of every counter the workload
//      touched (index pages, pool traffic, per-query aggregates).

#include <cstdio>
#include <memory>

#include "btree/btree.h"
#include "obs/metrics.h"
#include "obs/runtime_metrics.h"
#include "query/explain.h"
#include "query/planner.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "workload/datagen.h"

int main() {
  using namespace probe;

  const zorder::GridSpec grid{2, 10};
  workload::DataGenConfig data;
  data.count = 5000;
  data.seed = 42;
  data.distribution = workload::Distribution::kUniform;
  const auto points = GeneratePoints(grid, data);

  btree::BTreeConfig config;
  config.leaf_capacity = 20;
  storage::MemPager pager;
  storage::BufferPool pool(&pager, 256);
  index::ZkdIndex index = index::ZkdIndex::Build(grid, &pool, points, config);
  const index::CostModel model = index::CostModel::FromIndex(index);

  // Export the pool's counters through the registry: collectors pull the
  // pool's own atomics at snapshot time, so there is nothing to update.
  obs::Registry& registry = obs::Registry::Default();
  const auto pool_metrics = RegisterPoolMetrics(registry, "main", pool);

  // A few warm-up queries so the aggregate per-query counters have
  // something to show.
  for (uint32_t lo = 0; lo < 800; lo += 200) {
    index.RangeSearch(geometry::GridBox::Make2D(lo, lo + 150, lo, lo + 150));
  }

  // 1. EXPLAIN ANALYZE: run one query instrumented.
  query::PlannerContext ctx;
  ctx.index = &index;
  ctx.cost_model = &model;
  query::PlannedQuery planned = query::Plan(
      query::Query::Range(geometry::GridBox::Make2D(100, 400, 100, 400)), ctx);
  query::ExplainAnalyzeOptions options;
  options.pool = &pool;
  const query::ExplainAnalyzeResult result =
      query::ExplainAnalyze(*planned.root, options);
  std::printf("--- EXPLAIN ANALYZE ---\n%s\n", result.text.c_str());

  // 2. The registry's Prometheus exposition: everything the workload
  // touched, one scrape.
  std::printf("--- metrics (Prometheus text format) ---\n%s",
              registry.RenderText().c_str());
  return 0;
}
