// Temporal data: interval queries on a 1-d grid.
//
// The paper's introduction names temporal data alongside spatial data as
// what traditional DBMSs mishandle, and Section 3 notes the ideas apply
// in one dimension as well. This example treats a day of meeting-room
// bookings as 1-d spatial objects (time intervals over a grid of minutes),
// stores their decompositions in a ZkdObjectIndex, and answers the
// classic temporal questions — "what is booked at instant t?" (stabbing)
// and "what overlaps this candidate slot?" (interval overlap) — with the
// very same machinery that answers 2-d map queries.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "geometry/primitives.h"
#include "index/object_index.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"

namespace {

using namespace probe;

// Minutes since midnight, on a 1024-minute grid (17 hours).
geometry::GridBox Slot(uint32_t start, uint32_t end_exclusive) {
  const zorder::DimRange range[1] = {{start, end_exclusive - 1}};
  return geometry::GridBox(range);
}

std::string Hhmm(uint32_t minutes) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02u:%02u", minutes / 60, minutes % 60);
  return buf;
}

}  // namespace

int main() {
  const zorder::GridSpec grid{/*dims=*/1, /*bits_per_dim=*/10};
  storage::MemPager disk;
  storage::BufferPool pool(&disk, 16);
  index::ZkdObjectIndex calendar(grid, &pool);

  struct Booking {
    const char* what;
    uint32_t start;
    uint32_t end;  // exclusive
  };
  const std::vector<Booking> bookings = {
      {"standup", 9 * 60, 9 * 60 + 15},
      {"design review", 9 * 60 + 30, 11 * 60},
      {"1:1", 10 * 60 + 30, 11 * 60},  // overlaps the review on purpose
      {"lunch hold", 12 * 60, 13 * 60},
      {"customer call", 14 * 60, 15 * 60 + 30},
      {"retro", 16 * 60, 17 * 60},
  };
  for (size_t i = 0; i < bookings.size(); ++i) {
    calendar.Insert(i + 1, geometry::BoxObject(
                               Slot(bookings[i].start, bookings[i].end)));
  }
  std::printf("calendar holds %llu interval elements for %zu bookings\n\n",
              static_cast<unsigned long long>(calendar.element_count()),
              bookings.size());

  // Stabbing: what is happening at 10:45?
  const uint32_t instant = 10 * 60 + 45;
  std::printf("at %s:\n", Hhmm(instant).c_str());
  for (const uint64_t id : calendar.QueryPoint(geometry::GridPoint({instant}))) {
    std::printf("  - %s\n", bookings[id - 1].what);
  }

  // Overlap: does a 10:00-12:30 candidate slot conflict?
  const geometry::GridBox candidate = Slot(10 * 60, 12 * 60 + 30);
  std::printf("\nconflicts with a %s-%s slot:\n", Hhmm(10 * 60).c_str(),
              Hhmm(12 * 60 + 30).c_str());
  index::ObjectQueryStats stats;
  for (const uint64_t id : calendar.QueryBox(candidate, &stats)) {
    std::printf("  - %s (%s-%s)\n", bookings[id - 1].what,
                Hhmm(bookings[id - 1].start).c_str(),
                Hhmm(bookings[id - 1].end).c_str());
  }
  std::printf("(answered with %llu page accesses)\n",
              static_cast<unsigned long long>(stats.leaf_pages));

  // Free-slot search: first gap of >= 60 minutes in working hours, found
  // by probing candidate hours.
  std::printf("\nfirst free hour after 09:00: ");
  for (uint32_t start = 9 * 60; start + 60 <= 17 * 60; start += 15) {
    if (calendar.QueryBox(Slot(start, start + 60)).empty()) {
      std::printf("%s-%s\n", Hhmm(start).c_str(), Hhmm(start + 60).c_str());
      break;
    }
  }

  // Cancellation works like any delete.
  calendar.Remove(4, geometry::BoxObject(Slot(bookings[3].start,
                                              bookings[3].end)));
  std::printf("\nafter cancelling the lunch hold, 12:00-13:00 conflicts: "
              "%zu\n",
              calendar.QueryBox(Slot(12 * 60, 13 * 60)).size());
  return 0;
}
