// Durability: a crash-safe index that survives being killed mid-write.
//
// DurableIndex is the full storage stack in one object: a database file,
// a write-ahead log beside it, a transactional pager enforcing no-steal /
// force-on-checkpoint, a buffer pool, and the zkd index on top. Batches
// commit atomically; opening a database *is* recovering it.
//
// This example plays the crash too: it arms the built-in fault injector
// so the log dies partway through a batch, then reopens the database and
// shows the half-written batch gone and every committed one intact.

#include <cstdio>
#include <string>
#include <vector>

#include "geometry/box.h"
#include "index/durable_index.h"
#include "util/rng.h"

int main() {
  using namespace probe;
  using Op = index::DurableIndex::Op;

  const zorder::GridSpec grid{/*dims=*/2, /*bits_per_dim=*/8};
  const std::string path = "/tmp/probe_durability_example.db";
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());

  // ---- Session 1: create, load three batches, checkpoint, then "crash".
  {
    index::DurableIndex::Options options;
    options.truncate = true;
    index::DurableIndex db(grid, path, options);
    if (!db.ok()) {
      std::printf("failed to create %s\n", path.c_str());
      return 1;
    }

    util::Rng rng(42);
    uint64_t id = 0;
    for (int batch = 0; batch < 3; ++batch) {
      std::vector<Op> ops;
      for (int i = 0; i < 100; ++i) {
        ops.push_back(Op::Insert(
            geometry::GridPoint({static_cast<uint32_t>(rng.NextBelow(256)),
                                 static_cast<uint32_t>(rng.NextBelow(256))}),
            id++));
      }
      db.Apply(ops);  // one atomic batch: all 100 or none
      std::printf("committed batch %d (%llu points, log %llu bytes)\n", batch,
                  static_cast<unsigned long long>(db.index().size()),
                  static_cast<unsigned long long>(db.wal().size_bytes()));
    }

    // A checkpoint forces committed pages into the database file and
    // restarts the log — bounding both log growth and recovery time.
    db.Checkpoint();
    std::printf("checkpoint: log now %llu bytes\n",
                static_cast<unsigned long long>(db.wal().size_bytes()));

    // Arm the fault injector: the log dies three records into the next
    // batch, mid-append — as if the machine lost power.
    db.wal().SetFaultPlan({.fail_after_records = db.wal().stats().records + 3,
                           .tear_bytes = 1000});
    std::vector<Op> doomed;
    for (int i = 0; i < 100; ++i) {
      doomed.push_back(Op::Insert(geometry::GridPoint({7, 7}), id++));
    }
    const bool applied = db.Apply(doomed);
    std::printf("doomed batch applied? %s (engine dead, batch not durable)\n",
                applied ? "yes" : "no");
    // The handle is dropped here with the torn log on disk — no shutdown.
  }

  // ---- Session 2: reopen. Recovery replays the committed batches and
  // truncates the torn tail; the doomed batch never happened.
  index::DurableIndex db(grid, path);
  if (!db.ok()) {
    std::printf("recovery failed\n");
    return 1;
  }
  std::printf("recovered: %llu points (torn tail of %llu bytes discarded)\n",
              static_cast<unsigned long long>(db.index().size()),
              static_cast<unsigned long long>(db.recovery().bytes_truncated));

  const auto box = geometry::GridBox::Make2D(0, 127, 0, 127);
  std::printf("range query over the recovered index: %zu hits\n",
              db.index().RangeSearch(box).size());

  // The recovered database keeps working.
  db.Insert(geometry::GridPoint({1, 2}), 999999);
  std::printf("new insert after recovery: %llu points\n",
              static_cast<unsigned long long>(db.index().size()));

  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  return 0;
}
