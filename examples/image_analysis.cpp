// Image analysis: global properties of a picture (Section 6).
//
// "How many black objects are in a given picture? What is the area of
// each object?" — asked of a LANDSAT-style synthetic scene (the paper
// names LANDSAT as the case where the grid representation *is* the data).
// The scene is decomposed once; connected-component labelling runs on the
// element sequence; set algebra answers change-detection questions
// between two scenes; a color-labelled PPM is written as an artifact.

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "ag/connected.h"
#include "ag/setops.h"
#include "decompose/decomposer.h"
#include "geometry/csg.h"
#include "geometry/primitives.h"
#include "util/ppm.h"
#include "util/rng.h"
#include "zorder/shuffle.h"

namespace {

using namespace probe;

// A scene: scattered lakes (balls) and fields (boxes).
std::shared_ptr<geometry::UnionObject> MakeScene(const zorder::GridSpec& grid,
                                                 uint64_t seed, int features) {
  util::Rng rng(seed);
  const double side = static_cast<double>(grid.side());
  std::vector<std::shared_ptr<const geometry::SpatialObject>> parts;
  for (int i = 0; i < features; ++i) {
    if (rng.NextBelow(3) == 0) {
      const uint32_t x = static_cast<uint32_t>(rng.NextBelow(grid.side() - 40));
      const uint32_t y = static_cast<uint32_t>(rng.NextBelow(grid.side() - 40));
      parts.push_back(std::make_shared<geometry::BoxObject>(
          geometry::GridBox::Make2D(
              x, x + 8 + static_cast<uint32_t>(rng.NextBelow(32)), y,
              y + 8 + static_cast<uint32_t>(rng.NextBelow(32)))));
    } else {
      parts.push_back(std::make_shared<geometry::BallObject>(
          std::vector<double>{rng.NextDouble() * side,
                              rng.NextDouble() * side},
          (0.015 + 0.05 * rng.NextDouble()) * side));
    }
  }
  return std::make_shared<geometry::UnionObject>(parts);
}

}  // namespace

int main() {
  const zorder::GridSpec grid{2, 8};  // 256 x 256 scene

  // --- Scene 1: decompose and label. ------------------------------------
  const auto scene1 = MakeScene(grid, 501, 18);
  const auto elements1 = decompose::Decompose(grid, *scene1);
  const auto labels = ag::LabelComponents(grid, elements1);

  std::printf("scene 1: %zu elements -> %d objects\n", elements1.size(),
              labels.component_count);
  std::vector<std::pair<uint64_t, int>> by_area;
  for (int c = 0; c < labels.component_count; ++c) {
    by_area.emplace_back(labels.component_areas[c], c);
  }
  std::sort(by_area.rbegin(), by_area.rend());
  std::printf("largest objects (area in cells):");
  for (size_t i = 0; i < by_area.size() && i < 5; ++i) {
    std::printf(" #%d=%llu", by_area[i].second,
                static_cast<unsigned long long>(by_area[i].first));
  }
  std::printf("\ntotal black area: %llu of %llu cells\n\n",
              static_cast<unsigned long long>(
                  ag::SequenceVolume(grid, elements1)),
              static_cast<unsigned long long>(grid.cell_count()));

  // --- Scene 2: change detection with set algebra. -----------------------
  const auto scene2 = MakeScene(grid, 502, 18);
  const auto elements2 = decompose::Decompose(grid, *scene2);
  const auto appeared = ag::DifferenceOf(grid, elements2, elements1);
  const auto vanished = ag::DifferenceOf(grid, elements1, elements2);
  const auto stable = ag::IntersectionOf(grid, elements1, elements2);
  std::printf("change detection vs scene 2:\n");
  std::printf("  appeared: %llu cells in %zu elements\n",
              static_cast<unsigned long long>(
                  ag::SequenceVolume(grid, appeared)),
              appeared.size());
  std::printf("  vanished: %llu cells in %zu elements\n",
              static_cast<unsigned long long>(
                  ag::SequenceVolume(grid, vanished)),
              vanished.size());
  std::printf("  stable  : %llu cells in %zu elements\n\n",
              static_cast<unsigned long long>(ag::SequenceVolume(grid, stable)),
              stable.size());

  // Consistency: stable + appeared covers scene 2 exactly.
  const auto recombined = ag::UnionOf(grid, stable, appeared);
  if (recombined != ag::Canonicalize(grid, elements2)) {
    std::printf("set-algebra inconsistency!\n");
    return 1;
  }
  std::printf("set-algebra check: stable U appeared == scene 2  (ok)\n");

  // --- Artifact: component-labelled image. -------------------------------
  ::mkdir("artifacts", 0755);
  util::PpmImage image(static_cast<int>(grid.side()),
                       static_cast<int>(grid.side()));
  image.Fill(245, 245, 245);
  for (size_t e = 0; e < elements1.size(); ++e) {
    uint8_t r, g, b;
    util::CategoricalColor(static_cast<uint64_t>(labels.component_of[e]), &r,
                           &g, &b);
    const auto ranges = UnshuffleRegion(grid, elements1[e]);
    for (uint32_t x = ranges[0].lo; x <= ranges[0].hi; ++x) {
      for (uint32_t y = ranges[1].lo; y <= ranges[1].hi; ++y) {
        image.Set(static_cast<int>(x), static_cast<int>(y), r, g, b);
      }
    }
  }
  if (image.WriteTo("artifacts/image_analysis_components.ppm")) {
    std::printf("wrote artifacts/image_analysis_components.ppm "
                "(objects colored by component)\n");
  }
  return 0;
}
